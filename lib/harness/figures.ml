(** One driver per evaluation table/figure.

    Every figure and table of Chapters 3 and 4 has an entry here that
    re-runs the underlying experiment and prints the series the paper
    plots.  Results are cost-model units (not milliseconds); the shapes —
    who wins, by what factor, where crossovers fall — are the reproduced
    quantity (see EXPERIMENTS.md). *)

module Config = Dpmr_core.Config
module Experiment = Dpmr_fi.Experiment
module Inject = Dpmr_fi.Inject
module Metrics = Dpmr_fi.Metrics
module Workloads = Dpmr_workloads.Workloads
module Engine = Dpmr_engine.Engine
module Job = Dpmr_engine.Job
module T = Table_fmt

type ctx = {
  scale : int;
  seed : int64;
  reps : int;
      (** repetitions per (site, variant) with distinct seeds — the run
          number RN of the (W, C, D, I, RN) experiment tuple (§3.6) *)
  engine : Engine.t;  (** runs every job batch: parallelism + result cache *)
  nv : Config.t -> Config.t;
      (** N-version override applied to every figure configuration
          ([--replicas]/[--families]/[--vote]); identity at the defaults,
          so the byte-stable [report all] contract is untouched *)
  experiments : (string, Experiment.t) Hashtbl.t;
      (** main-domain contexts, for site enumeration and golden baselines
          (worker domains build their own — see [Engine]) *)
  class_cache : (string, Experiment.run_result list) Hashtbl.t;
  snad_cache : (string, bool list) Hashtbl.t;  (** StdNotAllDet per site *)
}

let create ?(scale = 1) ?(seed = 42L) ?(reps = 1) ?(replicas = 1) ?(families = [])
    ?(vote = Config.Any_mismatch) ?engine () =
  let engine =
    (* absent an explicit engine, behave exactly like the historical
       serial driver: one worker, no persistent cache *)
    match engine with
    | Some e -> e
    | None -> Engine.create ~jobs:1 ~use_cache:false ~progress:false ()
  in
  {
    scale;
    seed;
    reps = max 1 reps;
    engine;
    nv = (fun cfg -> { cfg with Config.replicas; families; vote });
    experiments = Hashtbl.create 8;
    class_cache = Hashtbl.create 64;
    snad_cache = Hashtbl.create 16;
  }

let experiment ctx name =
  match Hashtbl.find_opt ctx.experiments name with
  | Some e -> e
  | None ->
      let entry = Workloads.find name in
      let wk =
        Experiment.workload name (fun () -> entry.Workloads.build ~scale:ctx.scale ())
      in
      let e = Experiment.make ~seed:ctx.seed wk in
      Hashtbl.replace ctx.experiments name e;
      e

(* ---------------- variant sets ---------------- *)

let diversities =
  [
    ("no-diversity", Config.No_diversity);
    ("zero-before-free", Config.Zero_before_free);
    ("rearrange-heap", Config.Rearrange_heap);
    ("pad-malloc-8", Config.Pad_malloc 8);
    ("pad-malloc-32", Config.Pad_malloc 32);
    ("pad-malloc-256", Config.Pad_malloc 256);
    ("pad-malloc-1024", Config.Pad_malloc 1024);
  ]

let policies =
  [
    ("all-loads", Config.All_loads);
    ("temporal-1/8", Config.Temporal Config.temporal_mask_1_8);
    ("temporal-1/2", Config.Temporal Config.temporal_mask_1_2);
    ("temporal-7/8", Config.Temporal Config.temporal_mask_7_8);
    ("static-10%", Config.Static 0.10);
    ("static-50%", Config.Static 0.50);
    ("static-90%", Config.Static 0.90);
  ]

let div_cfg mode d = { Config.default with Config.mode; diversity = d }

(* the policy study fixes rearrange-heap, the best diversity transform (§3.8) *)
let pol_cfg mode pol =
  { Config.default with Config.mode; diversity = Config.Rearrange_heap; policy = pol }

let apps = [ "art"; "bzip2"; "equake"; "mcf" ]

let kind_resize = Inject.Heap_array_resize 50
let kind_free = Inject.Immediate_free

let kind_tag = function
  | Inject.Heap_array_resize _ -> "resize"
  | Inject.Immediate_free -> "free"
  | Inject.Off_by_one -> "off-by-one"
  | Inject.Wild_store _ -> "wild-store"

(* ---------------- engine-batched data collection ---------------- *)

(** A cell is one (app, kind, variant) series: an in-process memo key
    plus the job specs that produce it.  Figures collect every cell they
    need and submit them to the engine as one batch, so the whole grid
    parallelizes and dedups across the figure, not per series. *)
type cell = { ckey : string; specs : Job.spec list }

(** Fault-injection cell: all sites × reps under one variant. *)
let fi_cell ctx app kind variant_key mk_variant =
  let ckey = Printf.sprintf "%s/%s/%s" app (kind_tag kind) variant_key in
  let specs =
    if Hashtbl.mem ctx.class_cache ckey then []
    else
      let e = experiment ctx app in
      List.concat_map
        (fun site ->
          List.init ctx.reps (fun rn ->
              let run_seed = Int64.add ctx.seed (Int64.of_int rn) in
              Job.make e ~workload:app ~scale:ctx.scale ~run_seed (mk_variant site)))
        (Experiment.sites e kind)
  in
  { ckey; specs }

let stdapp_cell ctx app kind =
  fi_cell ctx app kind "stdapp" (fun site -> Experiment.Fi_stdapp (kind, site))

let dpmr_cell ctx app kind cfg =
  fi_cell ctx app kind (Config.name cfg) (fun site ->
      Experiment.Fi_dpmr (cfg, kind, site))

(** Non-FI cell: a single DPMR run of a configuration (overhead/memory). *)
let nofi_cell ctx app cfg =
  let ckey = Printf.sprintf "nofi/%s/%s" app (Config.name cfg) in
  let specs =
    if Hashtbl.mem ctx.class_cache ckey then []
    else
      let e = experiment ctx app in
      [ Job.make e ~workload:app ~scale:ctx.scale ~run_seed:ctx.seed
          (Experiment.Nofi_dpmr cfg) ]
  in
  { ckey; specs }

(** Run every not-yet-memoized cell through the engine as one batch and
    memoize the per-cell result lists (holes included, so positional
    site x rep alignment survives failed jobs). *)
let ensure ctx cells =
  let pending =
    List.filter (fun c -> c.specs <> [] && not (Hashtbl.mem ctx.class_cache c.ckey)) cells
  in
  (* a cell can appear twice in one figure; keep the first occurrence *)
  let seen = Hashtbl.create 16 in
  let pending =
    List.filter
      (fun c ->
        if Hashtbl.mem seen c.ckey then false
        else begin
          Hashtbl.replace seen c.ckey ();
          true
        end)
      pending
  in
  let results = Engine.run_specs_r ctx.engine (List.concat_map (fun c -> c.specs) pending) in
  let rec split cells results =
    match cells with
    | [] -> ()
    | c :: rest ->
        let k = List.length c.specs in
        let mine = List.filteri (fun i _ -> i < k) results in
        let others = List.filteri (fun i _ -> i >= k) results in
        Hashtbl.replace ctx.class_cache c.ckey mine;
        split rest others
  in
  split pending results

let cell_results ctx cell =
  ensure ctx [ cell ];
  Hashtbl.find ctx.class_cache cell.ckey

(** Classifications of the runs that completed. *)
let ok_of rs = List.filter_map Experiment.result_classification rs

(** Number of holes ([Job_failed]) in a result list. *)
let failed_of rs =
  List.fold_left
    (fun n -> function Experiment.Job_failed _ -> n + 1 | Experiment.Run _ -> n)
    0 rs

let stdapp_results ctx app kind = cell_results ctx (stdapp_cell ctx app kind)
let dpmr_results ctx app kind cfg = cell_results ctx (dpmr_cell ctx app kind cfg)

(** (runtime, memory) overhead ratios of a configuration, engine-cached;
    [None] when the supervised run failed (hole in the table). *)
let overheads ctx app cfg =
  match cell_results ctx (nofi_cell ctx app cfg) with
  | Experiment.Run c :: _ ->
      Some (Experiment.overheads_of_classification (experiment ctx app) c)
  | _ -> None

let overhead ctx app cfg = Option.map fst (overheads ctx app cfg)
let memory_overhead ctx app cfg = Option.map snd (overheads ctx app cfg)

(** How a failed job renders: an explicit hole marker, never a silent
    drop and never a batch abort. *)
let hole = "!"

let ratio_cell = function Some x -> T.f2 x | None -> hole

(** StdNotAllDet flags, per site (the conditional-coverage filter). *)
let snad ctx app kind =
  let key = Printf.sprintf "%s/%s" app (kind_tag kind) in
  match Hashtbl.find_opt ctx.snad_cache key with
  | Some l -> l
  | None ->
      let l =
        (* per the Table 3.2 definition, a fault is StdNotAllDet if ANY
           stdapp run of it silently corrupts; with reps > 1 the flag is
           the per-site disjunction, replicated per repetition to align
           with the classification lists.  Computed over the FULL result
           list — a failed stdapp run cannot claim SNAD — so positions
           stay aligned with the (site x rep) grid even under holes *)
        let per_run =
          List.map
            (function
              | Experiment.Run (c : Experiment.classification) ->
                  c.Experiment.sf && (not c.Experiment.co) && not c.Experiment.ndet
              | Experiment.Job_failed _ -> false)
            (stdapp_results ctx app kind)
        in
        let n_sites = List.length per_run / ctx.reps in
        List.concat
          (List.init n_sites (fun s ->
               let site_any =
                 List.exists
                   (fun r -> List.nth per_run ((s * ctx.reps) + r))
                   (List.init ctx.reps (fun r -> r))
               in
               List.init ctx.reps (fun _ -> site_any)))
      in
      Hashtbl.replace ctx.snad_cache key l;
      l

(** Positional filter over a FULL result list (holes included), so the
    i-th result still answers the i-th (site, rep) slot. *)
let filter_snad ctx app kind rs =
  List.filteri
    (fun i _ -> match List.nth_opt (snad ctx app kind) i with Some b -> b | None -> false)
    rs

(* ---------------- coverage figures ---------------- *)

let cov_cells ?(failed = 0) cov =
  [
    T.f2 (Metrics.co_frac cov);
    T.f2 (Metrics.ndet_frac cov);
    T.f2 (Metrics.ddet_frac cov);
    T.f2 (Metrics.total cov);
    (* failed jobs are marked in the sample-size column ("115!3" = 115
       successful injections, 3 runs lost), so a degraded series is
       visibly degraded instead of silently smaller *)
    (if failed = 0 then string_of_int cov.Metrics.n_sf
     else Printf.sprintf "%d%s%d" cov.Metrics.n_sf hole failed);
  ]

let cov_header = [ "variant"; "app"; "CO"; "NatDet"; "DpmrDet"; "total"; "n" ]

(** Per-app coverage figure (3.6/3.7/3.11/3.12 and the 4.x analogues). *)
let coverage_figure ctx ~title ~kind ~variants ~mk_cfg =
  T.print_section title;
  let mk_cfg v = ctx.nv (mk_cfg v) in
  ensure ctx
    (List.map (fun app -> stdapp_cell ctx app kind) apps
    @ List.concat_map
        (fun (_, v) -> List.map (fun app -> dpmr_cell ctx app kind (mk_cfg v)) apps)
        variants);
  let rows = ref [] in
  let row label app rs =
    rows := ([ label; app ] @ cov_cells ~failed:(failed_of rs) (Metrics.of_list (ok_of rs))) :: !rows
  in
  List.iter (fun app -> row "stdapp" app (stdapp_results ctx app kind)) apps;
  List.iter
    (fun (vname, v) ->
      List.iter (fun app -> row vname app (dpmr_results ctx app kind (mk_cfg v))) apps)
    variants;
  print_string (T.render (cov_header :: List.rev !rows))

(** Aggregated conditional coverage (3.8/3.9/3.13/3.14 and 4.x). *)
let cond_coverage_figure ctx ~title ~kind ~variants ~mk_cfg =
  T.print_section title;
  let mk_cfg v = ctx.nv (mk_cfg v) in
  ensure ctx
    (List.map (fun app -> stdapp_cell ctx app kind) apps
    @ List.concat_map
        (fun (_, v) -> List.map (fun app -> dpmr_cell ctx app kind (mk_cfg v)) apps)
        variants);
  let rows = ref [] in
  let agg label results_of =
    let rs = List.concat_map (fun app -> filter_snad ctx app kind (results_of app)) apps in
    rows :=
      ([ label; "all" ] @ cov_cells ~failed:(failed_of rs) (Metrics.of_list (ok_of rs)))
      :: !rows
  in
  agg "stdapp" (fun app -> stdapp_results ctx app kind);
  List.iter
    (fun (vname, v) -> agg vname (fun app -> dpmr_results ctx app kind (mk_cfg v)))
    variants;
  print_string (T.render (cov_header :: List.rev !rows))

(* ---------------- overhead figures ---------------- *)

let overhead_figure ctx ~title ~variants ~mk_cfg =
  T.print_section title;
  let mk_cfg v = ctx.nv (mk_cfg v) in
  ensure ctx
    (List.concat_map
       (fun (_, v) -> List.map (fun app -> nofi_cell ctx app (mk_cfg v)) apps)
       variants);
  let header = "variant" :: apps in
  let rows =
    ("golden" :: List.map (fun _ -> "1.00") apps)
    :: List.map
         (fun (vname, v) ->
           vname :: List.map (fun app -> ratio_cell (overhead ctx app (mk_cfg v))) apps)
         variants
  in
  print_string (T.render (header :: rows))

(** Side-by-side SDS/MDS overheads (Figures 4.3/4.4). *)
let side_by_side_overhead ctx ~title ~variants ~mk_cfg =
  T.print_section title;
  let mk_cfg m v = ctx.nv (mk_cfg m v) in
  ensure ctx
    (List.concat_map
       (fun (_, v) ->
         List.concat_map
           (fun app ->
             [ nofi_cell ctx app (mk_cfg Config.Sds v);
               nofi_cell ctx app (mk_cfg Config.Mds v) ])
           apps)
       variants);
  let header = "variant" :: List.concat_map (fun a -> [ a ^ "/sds"; a ^ "/mds" ]) apps in
  let rows =
    List.map
      (fun (vname, v) ->
        vname
        :: List.concat_map
             (fun app ->
               [
                 ratio_cell (overhead ctx app (mk_cfg Config.Sds v));
                 ratio_cell (overhead ctx app (mk_cfg Config.Mds v));
               ])
             apps)
      variants
  in
  print_string (T.render (header :: rows))

(* ---------------- detection-latency tables ---------------- *)

let t2d_table ctx ~title ~variants ~mk_cfg =
  T.print_section title;
  let mk_cfg v = ctx.nv (mk_cfg v) in
  ensure ctx
    (List.concat_map
       (fun kind ->
         List.concat_map
           (fun (_, v) -> List.map (fun app -> dpmr_cell ctx app kind (mk_cfg v)) apps)
           variants)
       [ kind_resize; kind_free ]);
  let header = [ "kind"; "variant" ] @ apps in
  let rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun (vname, v) ->
            [ kind_tag kind; vname ]
            @ List.map
                (fun app ->
                  let rs = dpmr_results ctx app kind (mk_cfg v) in
                  match Metrics.mean_t2d (ok_of rs) with
                  | Some t -> Printf.sprintf "%.0f" t
                  | None -> if failed_of rs > 0 then hole else "--")
                apps)
          variants)
      [ kind_resize; kind_free ]
  in
  print_string (T.render (header :: rows))

(* ---------------- misc tables ---------------- *)

let table_3_1 () =
  T.print_section "Table 3.1: testbed specifications (simulated)";
  print_string
    (T.render
       [
         [ "component"; "value" ];
         [ "execution"; "deterministic IR interpreter (cost-unit clock)" ];
         [ "cost: load/store"; Printf.sprintf "%d/%d units" Dpmr_vm.Cost.load Dpmr_vm.Cost.store ];
         [ "cost: branch/cond-branch"; Printf.sprintf "%d/%d units" Dpmr_vm.Cost.branch Dpmr_vm.Cost.cond_branch ];
         [ "cost: malloc"; "40 + bytes/32 units (fresh chunk)" ];
         [ "heap"; "binned first-fit, 16-byte chunk headers, min payload 24B" ];
         [ "memory"; "demand-mapped 4 KiB pages, flat 64-bit space" ];
         [ "timeout"; "20x golden cost (deterministic)" ];
       ])

let table_3_2 () =
  T.print_section "Table 3.2: measurement components";
  print_string
    (T.render
       [
         [ "symbol"; "meaning" ];
         [ "SF"; "successful fault injection: injected code executed at least once" ];
         [ "CO"; "correct output: output and exit status match the golden run" ];
         [ "NatDet"; "natural detection: crash or error-indicating exit status" ];
         [ "DpmrDet"; "a DPMR load check or wrapper check aborted the program" ];
         [ "T2D"; "total cost minus cost at first successful injection" ];
         [ "StdNotAllDet"; "fi-stdapp produced incorrect output without natural detection" ];
         [ "overhead"; "mean variant cost / mean golden cost, non-FI runs" ];
       ])

let fig_3_16 () =
  T.print_section "Figure 3.16: periodicity-optimized temporal checking";
  let counter, periodic = Periodicity.measure () in
  print_string
    (T.render
       [
         [ "codegen"; "cost"; "relative" ];
         [ "counter-gated (Fig 3.16a)"; Int64.to_string counter; "1.00" ];
         [
           "unrolled periodic (Fig 3.16b)";
           Int64.to_string periodic;
           T.f2 (Int64.to_float periodic /. Int64.to_float counter);
         ];
       ])

(* ---------------- registry ---------------- *)

let sds = Config.Sds
let mds = Config.Mds

let all : (string * string * (ctx -> unit)) list =
  [
    ("table-3.1", "testbed specifications", fun _ -> table_3_1 ());
    ("table-3.2", "measurement components", fun _ -> table_3_2 ());
    ( "fig-3.6",
      "mean heap array resize coverage of diversity transformations (SDS)",
      fun ctx ->
        coverage_figure ctx
          ~title:"Figure 3.6: heap array resize coverage, diversity transforms (SDS)"
          ~kind:kind_resize ~variants:diversities ~mk_cfg:(div_cfg sds) );
    ( "fig-3.7",
      "mean immediate free coverage of diversity transformations (SDS)",
      fun ctx ->
        coverage_figure ctx
          ~title:"Figure 3.7: immediate free coverage, diversity transforms (SDS)"
          ~kind:kind_free ~variants:diversities ~mk_cfg:(div_cfg sds) );
    ( "fig-3.8",
      "conditional heap array resize coverage of diversity transformations (SDS)",
      fun ctx ->
        cond_coverage_figure ctx
          ~title:"Figure 3.8: conditional resize coverage, diversity transforms (SDS)"
          ~kind:kind_resize ~variants:diversities ~mk_cfg:(div_cfg sds) );
    ( "fig-3.9",
      "conditional immediate free coverage of diversity transformations (SDS)",
      fun ctx ->
        cond_coverage_figure ctx
          ~title:"Figure 3.9: conditional immediate-free coverage, diversity transforms (SDS)"
          ~kind:kind_free ~variants:diversities ~mk_cfg:(div_cfg sds) );
    ( "fig-3.10",
      "overhead of diversity transformations (SDS)",
      fun ctx ->
        overhead_figure ctx ~title:"Figure 3.10: overhead of diversity transforms (SDS)"
          ~variants:diversities ~mk_cfg:(div_cfg sds) );
    ( "table-3.3",
      "mean time to detection of diversity transformations (SDS)",
      fun ctx ->
        t2d_table ctx ~title:"Table 3.3: mean time to detection, diversity transforms (SDS)"
          ~variants:diversities ~mk_cfg:(div_cfg sds) );
    ( "fig-3.11",
      "heap array resize coverage of state comparison policies (SDS)",
      fun ctx ->
        coverage_figure ctx
          ~title:"Figure 3.11: resize coverage, comparison policies (SDS, rearrange-heap)"
          ~kind:kind_resize ~variants:policies ~mk_cfg:(pol_cfg sds) );
    ( "fig-3.12",
      "immediate free coverage of state comparison policies (SDS)",
      fun ctx ->
        coverage_figure ctx
          ~title:"Figure 3.12: immediate-free coverage, comparison policies (SDS)"
          ~kind:kind_free ~variants:policies ~mk_cfg:(pol_cfg sds) );
    ( "fig-3.13",
      "conditional resize coverage of state comparison policies (SDS)",
      fun ctx ->
        cond_coverage_figure ctx
          ~title:"Figure 3.13: conditional resize coverage, comparison policies (SDS)"
          ~kind:kind_resize ~variants:policies ~mk_cfg:(pol_cfg sds) );
    ( "fig-3.14",
      "conditional immediate-free coverage of state comparison policies (SDS)",
      fun ctx ->
        cond_coverage_figure ctx
          ~title:"Figure 3.14: conditional immediate-free coverage, comparison policies (SDS)"
          ~kind:kind_free ~variants:policies ~mk_cfg:(pol_cfg sds) );
    ( "fig-3.15",
      "overhead of state comparison policies (SDS)",
      fun ctx ->
        overhead_figure ctx
          ~title:"Figure 3.15: overhead of comparison policies (SDS, rearrange-heap)"
          ~variants:policies ~mk_cfg:(pol_cfg sds) );
    ("fig-3.16", "periodicity-optimized temporal checking", fun _ -> fig_3_16 ());
    ( "table-3.4",
      "mean time to detection of state comparison policies (SDS)",
      fun ctx ->
        t2d_table ctx ~title:"Table 3.4: mean time to detection, comparison policies (SDS)"
          ~variants:policies ~mk_cfg:(pol_cfg sds) );
    ( "fig-4.3",
      "side-by-side diversity transformation overheads of SDS and MDS",
      fun ctx ->
        side_by_side_overhead ctx
          ~title:"Figure 4.3: SDS vs MDS diversity overheads"
          ~variants:
            [
              ("no-diversity", Config.No_diversity);
              ("zero-before-free", Config.Zero_before_free);
              ("rearrange-heap", Config.Rearrange_heap);
              ("pad-malloc-32", Config.Pad_malloc 32);
            ]
          ~mk_cfg:div_cfg );
    ( "fig-4.4",
      "side-by-side comparison policy overheads of SDS and MDS",
      fun ctx ->
        side_by_side_overhead ctx
          ~title:"Figure 4.4: SDS vs MDS comparison-policy overheads (rearrange-heap)"
          ~variants:
            [
              ("static-10%", Config.Static 0.10);
              ("static-50%", Config.Static 0.50);
              ("static-90%", Config.Static 0.90);
              ("all-loads", Config.All_loads);
            ]
          ~mk_cfg:pol_cfg );
    ( "fig-4.5",
      "MDS overhead of diversity transformations",
      fun ctx ->
        overhead_figure ctx ~title:"Figure 4.5: overhead of diversity transforms (MDS)"
          ~variants:diversities ~mk_cfg:(div_cfg mds) );
    ( "fig-4.6",
      "MDS overhead of state comparison policies",
      fun ctx ->
        overhead_figure ctx ~title:"Figure 4.6: overhead of comparison policies (MDS)"
          ~variants:policies ~mk_cfg:(pol_cfg mds) );
    ( "fig-4.7",
      "mean MDS heap array resize coverage of diversity transformations",
      fun ctx ->
        coverage_figure ctx
          ~title:"Figure 4.7: resize coverage, diversity transforms (MDS)" ~kind:kind_resize
          ~variants:diversities ~mk_cfg:(div_cfg mds) );
    ( "fig-4.8",
      "mean MDS immediate free coverage of diversity transformations",
      fun ctx ->
        coverage_figure ctx
          ~title:"Figure 4.8: immediate-free coverage, diversity transforms (MDS)"
          ~kind:kind_free ~variants:diversities ~mk_cfg:(div_cfg mds) );
    ( "fig-4.9",
      "conditional MDS resize coverage of diversity transformations",
      fun ctx ->
        cond_coverage_figure ctx
          ~title:"Figure 4.9: conditional resize coverage, diversity transforms (MDS)"
          ~kind:kind_resize ~variants:diversities ~mk_cfg:(div_cfg mds) );
    ( "fig-4.10",
      "conditional MDS immediate-free coverage of diversity transformations",
      fun ctx ->
        cond_coverage_figure ctx
          ~title:"Figure 4.10: conditional immediate-free coverage, diversity transforms (MDS)"
          ~kind:kind_free ~variants:diversities ~mk_cfg:(div_cfg mds) );
    ( "fig-4.11",
      "MDS resize coverage of state comparison policies",
      fun ctx ->
        coverage_figure ctx
          ~title:"Figure 4.11: resize coverage, comparison policies (MDS)" ~kind:kind_resize
          ~variants:policies ~mk_cfg:(pol_cfg mds) );
    ( "fig-4.12",
      "MDS immediate-free coverage of state comparison policies",
      fun ctx ->
        coverage_figure ctx
          ~title:"Figure 4.12: immediate-free coverage, comparison policies (MDS)"
          ~kind:kind_free ~variants:policies ~mk_cfg:(pol_cfg mds) );
    ( "fig-4.13",
      "conditional MDS resize coverage of state comparison policies",
      fun ctx ->
        cond_coverage_figure ctx
          ~title:"Figure 4.13: conditional resize coverage, comparison policies (MDS)"
          ~kind:kind_resize ~variants:policies ~mk_cfg:(pol_cfg mds) );
    ( "fig-4.14",
      "conditional MDS immediate-free coverage of state comparison policies",
      fun ctx ->
        cond_coverage_figure ctx
          ~title:"Figure 4.14: conditional immediate-free coverage, comparison policies (MDS)"
          ~kind:kind_free ~variants:policies ~mk_cfg:(pol_cfg mds) );
    ( "table-4.5",
      "mean time to detection of diversity transformations under MDS",
      fun ctx ->
        t2d_table ctx ~title:"Table 4.5: mean time to detection, diversity transforms (MDS)"
          ~variants:diversities ~mk_cfg:(div_cfg mds) );
    ( "table-4.6",
      "mean time to detection of state comparison policies under MDS",
      fun ctx ->
        t2d_table ctx ~title:"Table 4.6: mean time to detection, comparison policies (MDS)"
          ~variants:policies ~mk_cfg:(pol_cfg mds) );
    ( "ext-off-by-one",
      "extension: coverage of off-by-one under-allocations (both designs)",
      fun ctx ->
        coverage_figure ctx
          ~title:"Extension: off-by-one coverage, rearrange-heap (SDS)"
          ~kind:Inject.Off_by_one
          ~variants:[ ("sds/rearrange", Config.Rearrange_heap) ]
          ~mk_cfg:(div_cfg sds);
        coverage_figure ctx
          ~title:"Extension: off-by-one coverage, rearrange-heap (MDS)"
          ~kind:Inject.Off_by_one
          ~variants:[ ("mds/rearrange", Config.Rearrange_heap) ]
          ~mk_cfg:(div_cfg mds) );
    ( "ext-wild-store",
      "extension: coverage of wild-pointer writes (both designs)",
      fun ctx ->
        coverage_figure ctx
          ~title:"Extension: wild-store coverage, no-diversity (SDS)"
          ~kind:(Inject.Wild_store 4096)
          ~variants:[ ("sds/no-diversity", Config.No_diversity) ]
          ~mk_cfg:(div_cfg sds);
        coverage_figure ctx
          ~title:"Extension: wild-store coverage, no-diversity (MDS)"
          ~kind:(Inject.Wild_store 4096)
          ~variants:[ ("mds/no-diversity", Config.No_diversity) ]
          ~mk_cfg:(div_cfg mds) );
    ( "detect-conditions",
      "§2.5 detection-conditions ablation (write/read/free manifestation classes)",
      fun ctx -> Detect_conditions.report ~engine:ctx.engine () );
    ( "rx-recovery",
      "extension: Rx-style recovery from DPMR detections (§1.5 pairing)",
      fun ctx ->
        T.print_section "Rx-style recovery from DPMR-detected resize faults";
        let kind = kind_resize in
        let cfg = ctx.nv (div_cfg sds Config.No_diversity) in
        (* enumerate (app, site, budget) on the main domain, then run the
           recovery attempts through the engine pool; each task rebuilds
           its program so no Prog.t crosses domains *)
        let work =
          List.concat_map
            (fun app ->
              let e = experiment ctx app in
              List.map
                (fun site -> (app, site, e.Experiment.budget))
                (Experiment.sites e kind))
            apps
        in
        let scale = ctx.scale in
        let results =
          Engine.run_tasks ctx.engine
            (List.map
               (fun (app, site, budget) () ->
                 let p = (Workloads.find app).Workloads.build ~scale () in
                 let injected = Dpmr_fi.Inject.apply p kind site in
                 Dpmr_core.Rx.run_with_recovery ~budget cfg injected
                   ~escalation:
                     [ Dpmr_core.Rx.Pad 8; Dpmr_core.Rx.Pad 64; Dpmr_core.Rx.Pad 1024 ])
               work)
        in
        let rows =
          List.filter_map
            (fun ((app, site, _), res) ->
              if Dpmr_vm.Outcome.is_dpmr_detect res.Dpmr_core.Rx.first then
                Some
                  [
                    app;
                    Dpmr_fi.Inject.site_name site;
                    (match res.Dpmr_core.Rx.recovered_with with
                    | Some (Dpmr_core.Rx.Pad pad) ->
                        Printf.sprintf "recovered (pad %d)" pad
                    | Some change ->
                        Printf.sprintf "recovered (%s)"
                          (Dpmr_core.Rx.env_change_name change)
                    | None -> "NOT recovered");
                    string_of_int res.Dpmr_core.Rx.attempts;
                  ]
              else None)
            (List.combine work results)
        in
        print_string
          (T.render ([ "app"; "detected fault site"; "outcome"; "re-executions" ] :: rows)) );
    ( "memory",
      "memory overhead of SDS and MDS (the §4.1 2x-4x / 2x claim)",
      fun ctx ->
        T.print_section "Memory overhead (peak heap bytes vs golden)";
        ensure ctx
          (List.concat_map
             (fun app ->
               [ nofi_cell ctx app (ctx.nv (div_cfg sds Config.No_diversity));
                 nofi_cell ctx app (ctx.nv (div_cfg mds Config.No_diversity)) ])
             apps);
        let header = [ "app"; "sds"; "mds" ] in
        let rows =
          List.map
            (fun app ->
              [
                app;
                ratio_cell (memory_overhead ctx app (ctx.nv (div_cfg sds Config.No_diversity)));
                ratio_cell (memory_overhead ctx app (ctx.nv (div_cfg mds Config.No_diversity)));
              ])
            apps
        in
        print_string (T.render (header :: rows)) );
  ]

let ids = List.map (fun (id, _, _) -> id) all

let run ctx id =
  match List.find_opt (fun (i, _, _) -> i = id) all with
  | Some (_, _, f) -> f ctx
  | None -> invalid_arg (Printf.sprintf "Figures.run: unknown experiment %S" id)

let run_all ctx = List.iter (fun (id, _, _) -> run ctx id) all

(* ---------------- detection forensics ----------------

   Deliberately not in [all]: [report all]'s stdout is a byte-stable
   contract checked by CI golden diffs, and traced runs are a diagnostic
   view layered on top of it ([dpmr report forensics <fig-id>]). *)

module Forensics = Dpmr_fi.Forensics
module Telemetry = Dpmr_engine.Telemetry
module Analysis = Dpmr_trace.Forensics

(* Map a figure id onto the fault kind and design mode its grid uses:
   the registry descriptions name both. *)
let forensics_params fig =
  let desc =
    match List.find_opt (fun (i, _, _) -> i = fig) all with
    | Some (_, d, _) -> d
    | None -> invalid_arg (Printf.sprintf "Figures.forensics: unknown experiment %S" fig)
  in
  let has sub =
    let n = String.length sub and m = String.length desc in
    let rec go i = i + n <= m && (String.sub desc i n = sub || go (i + 1)) in
    go 0
  in
  let kind =
    if fig = "ext-off-by-one" then Inject.Off_by_one
    else if fig = "ext-wild-store" then Inject.Wild_store 4096
    else if has "free" then kind_free
    else kind_resize
  in
  let mode = if has "MDS" || has "mds" then mds else sds in
  (kind, mode)

(** Traced re-run of one figure's fault grid: every (app, site) cell of
    [fig]'s fault kind under the baseline configuration, each run with a
    trace sink installed, forensics-analyzed, and cross-checked against
    its classification's t2d.  One engine task per app (the experiment
    and its golden run are rebuilt inside the worker domain, like the
    rx-recovery figure, so no program crosses domains); per-domain sink
    summaries merge through the engine's telemetry. *)
let forensics ctx fig =
  let kind, mode = forensics_params fig in
  let cfg = div_cfg mode Config.No_diversity in
  T.print_section
    (Printf.sprintf "Detection forensics: %s faults, %s (grid of %s)" (kind_tag kind)
       (Config.mode_name mode) fig);
  let scale = ctx.scale and seed = ctx.seed in
  let per_app =
    Engine.run_tasks ctx.engine
      (List.map
         (fun app () ->
           let entry = Workloads.find app in
           let wk =
             Experiment.workload app (fun () -> entry.Workloads.build ~scale ())
           in
           let e = Experiment.make ~seed wk in
           let traced =
             List.map
               (fun site ->
                 (site, Forensics.run_variant e (Experiment.Fi_dpmr (cfg, kind, site))))
               (Experiment.sites e kind)
           in
           let summary =
             List.fold_left
               (fun acc (_, tr) -> Dpmr_trace.Trace.add_summary acc tr.Forensics.summary)
               Dpmr_trace.Trace.zero_summary traced
           in
           Telemetry.record_trace (Engine.telemetry ctx.engine) summary;
           traced)
         apps)
  in
  let fmt_corruption (tr : Forensics.traced) =
    match
      (tr.Forensics.report.Analysis.corruption, tr.Forensics.report.Analysis.first_bad_store)
    with
    | Some c, _ -> Fmt.str "%a" Analysis.pp_corruption c
    | None, Some (_, c) -> Fmt.str "%a" Analysis.pp_corruption c
    | None, None -> "-"
  in
  let fmt_divergence (tr : Forensics.traced) =
    match tr.Forensics.report.Analysis.detection with
    | Some { Analysis.addr = Some a; off = Some o; _ } ->
        Printf.sprintf "0x%Lx+%d" a o
    | _ -> "-"
  in
  let fmt_opt = function Some d -> string_of_int d | None -> "-" in
  let rows =
    List.concat
      (List.map2
         (fun app traced ->
           List.map
             (fun (site, tr) ->
               let c = tr.Forensics.classification in
               [
                 app;
                 Inject.site_name site;
                 Forensics.fate tr;
                 fmt_corruption tr;
                 fmt_divergence tr;
                 fmt_opt tr.Forensics.distance;
                 (match c.Experiment.t2d with
                 | Some t -> Int64.to_string t
                 | None -> "-");
                 (if tr.Forensics.consistent then "yes" else "NO");
               ])
             traced)
         apps per_app)
  in
  print_string
    (T.render
       ([
          "app"; "fault site"; "fate"; "corruption"; "divergent byte"; "trace dist";
          "t2d"; "agree";
        ]
       :: rows));
  let bad = List.filter (fun row -> List.nth row 7 = "NO") rows in
  if bad <> [] then
    Printf.printf "!! %d run(s) where trace distance disagrees with t2d\n"
      (List.length bad)

(* ---------------- N-version detection surface ----------------

   Like forensics, deliberately not in [all]: [report all]'s stdout is a
   byte-stable golden contract, and the surface is the N-version
   subsystem's own figure ([dpmr report nversion-surface]). *)

module Surface = Dpmr_nversion.Surface

(** Detection-coverage surface over (replica count, family set, fault
    model), plus the detection-condition analysis and the per-replica
    overhead against the Equation 3.1-style linear model.  Every grid
    point is an ordinary engine-batched fault grid — cached, chaos-safe
    and distributable like any other figure. *)
let nversion_surface ctx =
  Dpmr_nversion.Families.ensure ();
  T.print_section
    "N-version detection surface (SDS, no base diversity, any-mismatch)";
  let kinds = [ kind_resize; kind_free ] in
  let points =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun (sname, fams) ->
            List.map (fun n -> (kind, sname, fams, n)) Surface.ns)
          Surface.family_sets)
      kinds
  in
  let cfg_of (_, _, fams, n) = Surface.cfg ~n ~families:fams () in
  ensure ctx
    (List.map (fun app -> stdapp_cell ctx app kind_resize) apps
    @ List.map (fun app -> stdapp_cell ctx app kind_free) apps
    @ List.concat_map
        (fun ((kind, _, _, _) as pt) ->
          List.map (fun app -> dpmr_cell ctx app kind (cfg_of pt)) apps)
        points);
  let totals = Hashtbl.create 64 in
  let rows = ref [] in
  List.iter
    (fun kind ->
      let rs = List.concat_map (fun app -> stdapp_results ctx app kind) apps in
      rows :=
        ([ kind_tag kind; "stdapp"; "-" ]
        @ cov_cells ~failed:(failed_of rs) (Metrics.of_list (ok_of rs)))
        :: !rows)
    kinds;
  List.iter
    (fun ((kind, sname, _, n) as pt) ->
      let rs = List.concat_map (fun app -> dpmr_results ctx app kind (cfg_of pt)) apps in
      let cov = Metrics.of_list (ok_of rs) in
      Hashtbl.replace totals (kind_tag kind, sname, n) (Metrics.total cov);
      rows :=
        ([ kind_tag kind; sname; string_of_int n ]
        @ cov_cells ~failed:(failed_of rs) cov)
        :: !rows)
    points;
  print_string
    (T.render
       ([ "kind"; "families"; "N"; "CO"; "NatDet"; "DpmrDet"; "total"; "n" ]
       :: List.rev !rows));
  (* detection conditions: what each (N, vote) point requires of a fault *)
  T.print_section "Detection conditions by (N, vote)";
  print_string
    (T.render
       ([ "N"; "vote"; "condition" ]
       :: List.concat_map
            (fun n ->
              List.map
                (fun vote ->
                  [
                    string_of_int n;
                    Config.vote_name vote;
                    Surface.detection_condition ~n ~vote;
                  ])
                [ Config.Any_mismatch; Config.Majority ])
            Surface.ns));
  (* marginal detection gain of going 1 -> max N, per family set *)
  T.print_section "Marginal total-coverage gain of N=3 over N=1";
  let nmax = List.fold_left max 1 Surface.ns in
  print_string
    (T.render
       ([ "kind"; "families"; "total@1"; Printf.sprintf "total@%d" nmax; "gain" ]
       :: List.concat_map
            (fun kind ->
              List.map
                (fun (sname, _) ->
                  let t n =
                    Hashtbl.find_opt totals (kind_tag kind, sname, n)
                  in
                  match (t 1, t nmax) with
                  | Some t1, Some tn ->
                      [ kind_tag kind; sname; T.f2 t1; T.f2 tn; T.f2 (tn -. t1) ]
                  | _ -> [ kind_tag kind; sname; hole; hole; hole ])
                Surface.family_sets)
            kinds));
  (* per-replica overhead of the full family stack vs the linear model *)
  T.print_section "Per-replica overhead (all families) vs linear model";
  let stack = List.assoc "all-families" Surface.family_sets in
  let ocfg n = Surface.cfg ~n ~families:stack () in
  ensure ctx
    (List.concat_map
       (fun n -> List.map (fun app -> nofi_cell ctx app (ocfg n)) apps)
       Surface.ns);
  let mean_overhead n =
    let vs = List.filter_map (fun app -> overhead ctx app (ocfg n)) apps in
    match vs with
    | [] -> None
    | _ -> Some (List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs))
  in
  let single = mean_overhead 1 in
  print_string
    (T.render
       ([ "N"; "measured"; "linear model" ]
       :: List.map
            (fun n ->
              [
                string_of_int n;
                (match mean_overhead n with Some v -> T.f2 v | None -> hole);
                (match single with
                | Some s -> T.f2 (Surface.linear_overhead ~n ~single:s)
                | None -> hole);
              ])
            Surface.ns))
