(** The local phase of Data Structure Analysis (§5.1): build a DS graph
    for one function from its instructions alone.

    Register bindings are flow-insensitive and unification-based: every
    pointer register is bound to one (node, offset); a second definition
    of the same register unifies the nodes.  This is the standard
    Steensgaard-style approximation; one simplification relative to full
    DSA is that a loop-carried rebinding at a different field offset
    unifies at the node level (costing field precision only in that
    case). *)

open Dpmr_ir
open Types
open Inst

type result = {
  graph : Graph.t;
  formals : (Graph.node * int) option list;  (** per-parameter pointer bindings *)
  func : Func.t;
}

let op_node (g : Graph.t) (prog : Prog.t) (f : Func.t) (o : operand) =
  match o with
  | Reg r -> (
      match Graph.reg_node g r with
      | Some b -> Some b
      | None ->
          if is_pointer (Func.reg_ty f r) then begin
            let n = Graph.fresh_node g () in
            Graph.bind_reg g r (n, 0);
            Some (n, 0)
          end
          else None)
  | Global name -> Some (Graph.global_node g name ~is_fun:false, 0)
  | Fun_addr name ->
      let n = Graph.global_node g name ~is_fun:true in
      ignore prog;
      Some (n, 0)
  | Null _ | Cint _ | Cfloat _ -> None

let def_bind g r (n, off) =
  (match Graph.reg_node g r with
  | Some (old, _) -> Graph.unify old n
  | None -> ());
  Graph.bind_reg g r (Graph.find n, off)

let analyze (prog : Prog.t) (f : Func.t) : result =
  let g = Graph.create () in
  let tenv = prog.Prog.tenv in
  (* bind pointer formals to fresh nodes *)
  let formals =
    List.map
      (fun (r, ty) ->
        if is_pointer ty then begin
          let n = Graph.fresh_node g () in
          Graph.bind_reg g r (n, 0);
          Some (n, 0)
        end
        else None)
      f.Func.params
  in
  let use o = op_node g prog f o in
  let use_ptr o =
    match use o with
    | Some b -> b
    | None ->
        (* e.g. an integer register used as an address after a cast the
           verifier allowed; treat as an unknown node *)
        (Graph.fresh_node g ~flags:[ Graph.Unknown ] (), 0)
  in
  Func.iter_insts f (fun _blk inst ->
      match inst with
      | Malloc (r, _, _) ->
          let n = Graph.fresh_node g ~flags:[ Graph.Heap ] () in
          def_bind g r (n, 0)
      | Alloca (r, _, _) ->
          let n = Graph.fresh_node g ~flags:[ Graph.Stack ] () in
          def_bind g r (n, 0)
      | Free p -> ignore (use p)
      | Load (r, ty, p) ->
          let n, off = use_ptr p in
          Graph.access n off ty;
          if is_pointer ty then def_bind g r (Graph.target_of g n off)
      | Store (ty, v, p) -> (
          let n, off = use_ptr p in
          Graph.access n off ty;
          if is_pointer ty then
            match use v with
            | Some tv -> Graph.set_target n off tv
            | None -> () (* storing null *))
      | Gep_field (r, sname, p, i) ->
          let n, off = use_ptr p in
          let foff =
            if Graph.is_collapsed n then 0 else Layout.field_offset tenv sname i
          in
          def_bind g r (n, off + foff)
      | Gep_index (r, _, p, _) ->
          let n, off = use_ptr p in
          Graph.add_flag n Graph.Array;
          def_bind g r (n, off)
      | Bitcast (r, _, p) -> def_bind g r (use_ptr p)
      | Ptr_to_int (_, p) ->
          let n, _ = use_ptr p in
          Graph.add_flag n Graph.Ptr_to_int_f
      | Int_to_ptr (r, _, _) ->
          (* DSA does not track pointers through integers: the result is an
             Unknown node flagged int-to-ptr (§5.1) *)
          let n = Graph.fresh_node g ~flags:[ Graph.Unknown; Graph.Int_to_ptr_f ] () in
          def_bind g r (n, 0)
      | Select (r, ty, _, a, b) ->
          if is_pointer ty then begin
            let bind =
              match (use a, use b) with
              | Some (na, oa), Some (nb, _) ->
                  Graph.unify na nb;
                  (Graph.find na, oa)
              | Some x, None | None, Some x -> x
              | None, None -> (Graph.fresh_node g (), 0)
            in
            def_bind g r bind
          end
      | Call (r, callee, args) ->
          let callee_info =
            match callee with
            | Direct name -> Graph.Known name
            | Indirect o ->
                let n, _ = use_ptr o in
                Graph.Through n
          in
          let arg_nodes = List.map use args in
          let cs_ret =
            match r with
            | Some rr when is_pointer (Func.reg_ty f rr) ->
                let n = Graph.fresh_node g () in
                def_bind g rr (n, 0);
                Some (n, 0)
            | _ -> None
          in
          g.Graph.calls <-
            { Graph.callee = callee_info; args = arg_nodes; cs_ret } :: g.Graph.calls
      | Binop _ | Fbinop _ | Icmp _ | Fcmp _ | Int_cast _ | F_to_i _ | I_to_f _ -> ());
  (* return-value binding *)
  List.iter
    (fun (b : Func.block) ->
      match b.Func.term with
      | Ret (Some o) when is_pointer f.Func.ret -> (
          match use o with
          | Some (n, off) -> (
              match g.Graph.ret with
              | None -> g.Graph.ret <- Some (n, off)
              | Some (n0, _) -> Graph.unify n0 n)
          | None -> ())
      | _ -> ())
    f.Func.blocks;
  { graph = g; formals; func = f }

(** Completeness marking: a node is complete unless it is reachable from a
    formal argument, the return value, a call site (arguments or return),
    or a global (§5.1's escape conditions). *)
let mark_completeness (res : result) =
  let g = res.graph in
  let escapes = Hashtbl.create 16 in
  let mark_from n =
    Hashtbl.iter (fun id () -> Hashtbl.replace escapes id ())
      (Graph.reachable_from n)
  in
  List.iter (function Some (n, _) -> mark_from n | None -> ()) res.formals;
  (match g.Graph.ret with Some (n, _) -> mark_from n | None -> ());
  List.iter
    (fun (cs : Graph.call_site) ->
      List.iter (function Some (n, _) -> mark_from n | None -> ()) cs.Graph.args;
      (match cs.Graph.cs_ret with Some (n, _) -> mark_from n | None -> ());
      match cs.Graph.callee with Graph.Through n -> mark_from n | Graph.Known _ -> ())
    g.Graph.calls;
  Hashtbl.iter (fun _ n -> mark_from n) g.Graph.global_nodes;
  List.iter
    (fun n ->
      let n = Graph.find n in
      if not (Hashtbl.mem escapes n.Graph.id) then Graph.add_flag n Graph.Complete)
    g.Graph.nodes
