(** DS graphs: the data structure of Data Structure Analysis (§5.1).

    A DS node represents a set of memory objects; nodes carry the flag set
    of §5.1 (complete/incomplete, H/S/G memory segments, Array, cOllapsed,
    Pointer-to-int, int-2-pointer, Unknown), a type-homogeneity map of
    field cells, and per-field outgoing edges.  Unification (node merging)
    uses union-find; merging nodes merges their field maps, and a
    type-inhomogeneous use collapses a node's fields into a single cell
    (the O flag), as in Lattner's analysis. *)

open Dpmr_ir
open Types

type flag =
  | Complete
  | Heap
  | Stack
  | Global_mem
  | Array
  | Collapsed
  | Ptr_to_int_f  (** P: the node's address was observed as an integer *)
  | Int_to_ptr_f  (** 2: the node was manufactured from an integer *)
  | Unknown  (** U: allocation source unrecognized *)
  | X  (** exclusion mark of the Figure 5.7 markX algorithm *)

module FlagSet = Set.Make (struct
  type t = flag

  let compare = compare
end)

type node = {
  id : int;
  mutable parent : node option;  (** union-find *)
  mutable flags : FlagSet.t;
  mutable globals : string list;  (** global variables/functions represented *)
  mutable cells : (int, cell) Hashtbl.t;  (** field offset -> cell *)
}

and cell = { mutable cty : ty option; mutable target : (node * int) option }

type t = {
  mutable nodes : node list;
  mutable next_id : int;
  regs : (Inst.reg, node * int) Hashtbl.t;  (** virtual register -> node+offset *)
  global_nodes : (string, node) Hashtbl.t;
  mutable ret : (node * int) option;
  mutable calls : call_site list;
}

and call_site = {
  callee : callee_info;
  args : (node * int) option list;  (** pointer args only; None for scalars *)
  cs_ret : (node * int) option;
}

and callee_info = Known of string | Through of node

let create () =
  {
    nodes = [];
    next_id = 0;
    regs = Hashtbl.create 32;
    global_nodes = Hashtbl.create 8;
    ret = None;
    calls = [];
  }

let fresh_node g ?(flags = []) () =
  let n =
    {
      id = g.next_id;
      parent = None;
      flags = FlagSet.of_list flags;
      globals = [];
      cells = Hashtbl.create 4;
    }
  in
  g.next_id <- g.next_id + 1;
  g.nodes <- n :: g.nodes;
  n

(** Union-find representative, with path compression. *)
let rec find n =
  match n.parent with
  | None -> n
  | Some p ->
      let r = find p in
      if r != p then n.parent <- Some r;
      r

let has_flag n f = FlagSet.mem f (find n).flags
let add_flag n f = (find n).flags <- FlagSet.add f (find n).flags

let is_complete n = has_flag n Complete
let is_collapsed n = has_flag n Collapsed

let cell_at n off =
  let n = find n in
  let off = if is_collapsed n then 0 else off in
  match Hashtbl.find_opt n.cells off with
  | Some c -> c
  | None ->
      let c = { cty = None; target = None } in
      Hashtbl.replace n.cells off c;
      c

(** Collapse a node: all fields merge into one cell at offset 0; the node
    becomes a byte array (O + A flags, §5.1). *)
let rec collapse n =
  let n = find n in
  if not (is_collapsed n) then begin
    n.flags <- FlagSet.add Collapsed (FlagSet.add Array n.flags);
    let cells = Hashtbl.fold (fun off c acc -> (off, c) :: acc) n.cells [] in
    Hashtbl.reset n.cells;
    let merged = { cty = Some (arr i8 0); target = None } in
    Hashtbl.replace n.cells 0 merged;
    List.iter
      (fun (_, c) ->
        match c.target with
        | None -> ()
        | Some (t, toff) -> (
            match merged.target with
            | None -> merged.target <- Some (find t, toff)
            | Some (t0, _) -> unify t0 t))
      cells
  end

(** Unify two nodes (and, recursively, the targets of matching fields). *)
and unify a b =
  let a = find a and b = find b in
  if a != b then begin
    (* collapsed-ness is contagious *)
    if is_collapsed a && not (is_collapsed b) then collapse b;
    if is_collapsed b && not (is_collapsed a) then collapse a;
    b.parent <- Some a;
    a.flags <- FlagSet.union a.flags b.flags;
    a.globals <- List.sort_uniq compare (a.globals @ b.globals);
    let bcells = Hashtbl.fold (fun off c acc -> (off, c) :: acc) b.cells [] in
    Hashtbl.reset b.cells;
    List.iter
      (fun (off, (c : cell)) ->
        let dst = cell_at a off in
        (match (dst.cty, c.cty) with
        | None, t -> dst.cty <- t
        | Some t1, Some t2 when t1 <> t2 ->
            (* type-inhomogeneous overlap: collapse *)
            if not (is_collapsed a) then collapse a
        | _ -> ());
        match (dst.target, c.target) with
        | None, t -> dst.target <- t
        | Some (t1, _), Some (t2, _) -> unify t1 t2
        | _, None -> ())
      bcells
  end

(** Record that [scalar_ty] is accessed at [off] of [n]; a conflicting
    scalar type at the same offset collapses the node. *)
let access n off scalar_ty =
  let n = find n in
  let c = cell_at n off in
  match c.cty with
  | None -> c.cty <- Some scalar_ty
  | Some t when t = scalar_ty -> ()
  | Some (Ptr _) when is_pointer scalar_ty ->
      () (* imprecisely typed pointers do not break homogeneity *)
  | Some _ -> collapse n

(** The points-to target of field [off] of [n], created on demand. *)
let target_of g n off =
  let c = cell_at n off in
  match c.target with
  | Some (t, toff) -> (find t, toff)
  | None ->
      let t = fresh_node g () in
      c.target <- Some (t, 0);
      (t, 0)

let set_target n off (t, toff) =
  let c = cell_at n off in
  match c.target with
  | None -> c.target <- Some (t, toff)
  | Some (t0, _) -> unify t0 t

(* ---- register bindings ---- *)

let reg_node g r =
  match Hashtbl.find_opt g.regs r with
  | Some (n, off) -> Some (find n, off)
  | None -> None

let bind_reg g r (n, off) = Hashtbl.replace g.regs r (n, off)

let global_node g name ~is_fun =
  match Hashtbl.find_opt g.global_nodes name with
  | Some n -> find n
  | None ->
      let n = fresh_node g ~flags:[ Global_mem ] () in
      n.globals <- [ name ];
      ignore is_fun;
      Hashtbl.replace g.global_nodes name n;
      n

(* ---- queries and reachability ---- *)

let reachable_from start =
  let seen = Hashtbl.create 16 in
  let rec go n =
    let n = find n in
    if not (Hashtbl.mem seen n.id) then begin
      Hashtbl.add seen n.id ();
      Hashtbl.iter
        (fun _ c -> match c.target with Some (t, _) -> go t | None -> ())
        n.cells
    end
  in
  go start;
  seen

(** Distinct representative nodes of the graph. *)
let all_nodes g =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      let r = find n in
      if Hashtbl.mem seen r.id then false
      else begin
        Hashtbl.add seen r.id ();
        r == n || true
      end)
    (List.map find g.nodes)

let flag_to_string = function
  | Complete -> "C"
  | Heap -> "H"
  | Stack -> "S"
  | Global_mem -> "G"
  | Array -> "A"
  | Collapsed -> "O"
  | Ptr_to_int_f -> "P"
  | Int_to_ptr_f -> "2"
  | Unknown -> "U"
  | X -> "X"

let flags_to_string n =
  String.concat "" (List.map flag_to_string (FlagSet.elements (find n).flags))

(** Render a DS graph in the style of the dissertation's DS-graph figures
    (5.5/5.6): one line per node with flags, globals and field edges. *)
let pp ppf g =
  let nodes =
    List.sort (fun a b -> compare a.id b.id) (all_nodes g)
  in
  List.iter
    (fun n ->
      let n = find n in
      Fmt.pf ppf "  n%d [%s]" n.id (flags_to_string n);
      if n.globals <> [] then
        Fmt.pf ppf " globals={%s}" (String.concat "," n.globals);
      let cells =
        List.sort compare (Hashtbl.fold (fun off c acc -> (off, c) :: acc) n.cells [])
      in
      List.iter
        (fun (off, (c : cell)) ->
          match c.target with
          | Some (t, toff) -> Fmt.pf ppf " +%d->n%d+%d" off (find t).id toff
          | None -> (
              match c.cty with
              | Some ty -> Fmt.pf ppf " +%d:%s" off (Dpmr_ir.Types.to_string ty)
              | None -> ()))
        cells;
      Fmt.pf ppf "@\n")
    nodes;
  (* register bindings, deterministically ordered *)
  let regs =
    List.sort compare (Hashtbl.fold (fun r (n, off) acc -> (r, (find n).id, off) :: acc) g.regs [])
  in
  List.iter (fun (r, nid, off) -> Fmt.pf ppf "  %%r%d -> n%d+%d@\n" r nid off) regs
