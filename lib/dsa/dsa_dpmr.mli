(** Glue: the DPMR transformation with the Chapter 5 scope expansion.

    Runs Data Structure Analysis, computes the exclusion closure, and
    invokes the MDS transformation with excluded accesses left
    unreplicated.  SDS + DSA is rejected: exclusion cannot provide the
    shadow-addressing guarantees SDS needs. *)

open Dpmr_ir

val transform : Dpmr_core.Config.t -> Prog.t -> Prog.t
val transform_with_scope : Dpmr_core.Config.t -> Prog.t -> Prog.t * Scope.t
