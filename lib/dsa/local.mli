(** The local phase of Data Structure Analysis (§5.1): a DS graph for one
    function from its instructions alone (flow-insensitive,
    unification-based). *)

open Dpmr_ir

type result = {
  graph : Graph.t;
  formals : (Graph.node * int) option list;  (** per-parameter bindings *)
  func : Func.t;
}

val analyze : Prog.t -> Func.t -> result

(** Completeness marking: a node is complete unless reachable from a
    formal, the return value, a call site, or a global (§5.1's escape
    conditions, Figure 5.2's reachability). *)
val mark_completeness : result -> unit
