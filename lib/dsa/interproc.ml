(** Bottom-up and top-down phases of Data Structure Analysis (§5.1).

    Bottom-up clones callee graphs into callers (callees first, in
    topological order of the direct call graph), unifying formal-argument
    clones with call-site actuals.  Top-down then propagates caller-side
    behaviour flags (U/2/O/P, memory segments, X) down into callee
    formals, callers first.  Calls inside a call-graph cycle are handled
    conservatively: the participating argument/return nodes stay
    incomplete and receive the Unknown flag, which the Chapter 5 scope
    expansion treats as "unknown DSA behaviour" (§5.5). *)

open Dpmr_ir

type summary = {
  results : (string, Local.result) Hashtbl.t;
  order : string list;  (** reverse-topological (callees first) *)
  in_cycle : (string, unit) Hashtbl.t;
}

(* --- call graph & SCC-lite: iterative DFS detecting back edges --- *)

let direct_callees (prog : Prog.t) (f : Func.t) =
  let acc = ref [] in
  Func.iter_insts f (fun _ inst ->
      match inst with
      | Inst.Call (_, Inst.Direct n, _) when Prog.has_func prog n -> acc := n :: !acc
      | _ -> ());
  List.sort_uniq compare !acc

let topo_order prog =
  let visited = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let in_cycle = Hashtbl.create 4 in
  let order = ref [] in
  let rec visit name =
    if Hashtbl.mem on_stack name then Hashtbl.replace in_cycle name ()
    else if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      Hashtbl.replace on_stack name ();
      List.iter visit (direct_callees prog (Prog.func prog name));
      Hashtbl.remove on_stack name;
      order := name :: !order
    end
  in
  Prog.iter_funcs prog (fun f -> visit f.Func.name);
  (* !order is callers-first; reverse for callees-first *)
  (List.rev !order, in_cycle)

(* --- graph cloning (for bottom-up inlining) --- *)

(** Clone the subgraph of [src] reachable from [roots] into [dst];
    returns the node mapping. *)
let clone_into (dst : Graph.t) roots =
  let mapping = Hashtbl.create 16 in
  let rec copy n =
    let n = Graph.find n in
    match Hashtbl.find_opt mapping n.Graph.id with
    | Some n' -> n'
    | None ->
        let n' = Graph.fresh_node dst () in
        Hashtbl.replace mapping n.Graph.id n';
        n'.Graph.flags <- Graph.FlagSet.remove Graph.Complete n.Graph.flags;
        n'.Graph.globals <- n.Graph.globals;
        Hashtbl.iter
          (fun off (c : Graph.cell) ->
            let c' = Graph.cell_at n' off in
            c'.Graph.cty <- c.Graph.cty;
            match c.Graph.target with
            | Some (t, toff) -> c'.Graph.target <- Some (copy t, toff)
            | None -> ())
          n.Graph.cells;
        n'
  in
  List.iter (fun n -> ignore (copy n)) roots;
  mapping

(** Resolve a call-site's possible defined callees. *)
let resolve_callees prog (cs : Graph.call_site) =
  match cs.Graph.callee with
  | Graph.Known n -> if Prog.has_func prog n then [ n ] else []
  | Graph.Through node ->
      (* function pointers: candidates are the functions in the node's
         globals list *)
      List.filter (Prog.has_func prog) (Graph.find node).Graph.globals

(** Inline callee graph [callee_res] at call site [cs] of caller graph [g]. *)
let inline_call (g : Graph.t) (callee_res : Local.result) (cs : Graph.call_site) =
  let callee_globals =
    Hashtbl.fold (fun name n acc -> (name, n) :: acc)
      callee_res.Local.graph.Graph.global_nodes []
  in
  let roots =
    List.filter_map (Option.map fst) callee_res.Local.formals
    @ (match callee_res.Local.graph.Graph.ret with Some (n, _) -> [ n ] | None -> [])
    @ List.map snd callee_globals
    @ List.concat_map
        (fun (inner : Graph.call_site) ->
          List.filter_map (Option.map fst) inner.Graph.args
          @ (match inner.Graph.cs_ret with Some (n, _) -> [ n ] | None -> []))
        callee_res.Local.graph.Graph.calls
  in
  let mapping = clone_into g roots in
  (* globals are program-wide: unify the cloned view of each global the
     callee touches with the caller's node for the same global *)
  List.iter
    (fun (name, n) ->
      match Hashtbl.find_opt mapping (Graph.find n).Graph.id with
      | Some n' -> Graph.unify (Graph.global_node g name ~is_fun:false) n'
      | None -> ())
    callee_globals;
  let mapped (n, off) =
    match Hashtbl.find_opt mapping (Graph.find n).Graph.id with
    | Some n' -> Some (n', off)
    | None -> None
  in
  (* unify cloned formals with actuals *)
  let rec zip formals actuals =
    match (formals, actuals) with
    | [], _ | _, [] -> ()
    | fo :: fs, ao :: as_ ->
        (match (fo, ao) with
        | Some fb, Some (an, _) -> (
            match mapped fb with Some (fn, _) -> Graph.unify fn an | None -> ())
        | _ -> ());
        zip fs as_
  in
  zip callee_res.Local.formals cs.Graph.args;
  (match (callee_res.Local.graph.Graph.ret, cs.Graph.cs_ret) with
  | Some rb, Some (rn, _) -> (
      match mapped rb with Some (cn, _) -> Graph.unify cn rn | None -> ())
  | _ -> ());
  (* surface the callee's own unresolved call sites in the caller, so
     deeper levels keep propagating *)
  List.iter
    (fun (inner : Graph.call_site) ->
      let args' =
        List.map (function Some b -> mapped b | None -> None) inner.Graph.args
      in
      let ret' = Option.bind inner.Graph.cs_ret mapped in
      match inner.Graph.callee with
      | Graph.Known _ -> () (* already folded into callee_res by its own BU pass *)
      | Graph.Through n -> (
          match Hashtbl.find_opt mapping (Graph.find n).Graph.id with
          | Some n' ->
              g.Graph.calls <-
                { Graph.callee = Graph.Through n'; args = args'; cs_ret = ret' }
                :: g.Graph.calls
          | None -> ()))
    callee_res.Local.graph.Graph.calls

(* --- the passes --- *)

let bottom_up prog (results : (string, Local.result) Hashtbl.t) order in_cycle =
  List.iter
    (fun name ->
      let res = Hashtbl.find results name in
      let g = res.Local.graph in
      List.iter
        (fun (cs : Graph.call_site) ->
          List.iter
            (fun callee ->
              if Hashtbl.mem in_cycle callee || callee = name then
                (* recursive edge: conservative — argument and return
                   nodes become Unknown *)
                List.iter
                  (function
                    | Some (n, _) -> Graph.add_flag n Graph.Unknown
                    | None -> ())
                  (cs.Graph.cs_ret :: cs.Graph.args)
              else
                match Hashtbl.find_opt results callee with
                | Some callee_res -> inline_call g callee_res cs
                | None -> ())
            (resolve_callees prog cs))
        g.Graph.calls)
    order

(* flags that flow from caller actuals into callee formals *)
let td_flags =
  [
    Graph.Unknown;
    Graph.Int_to_ptr_f;
    Graph.Ptr_to_int_f;
    Graph.Collapsed;
    Graph.Heap;
    Graph.Stack;
    Graph.Global_mem;
    Graph.X;
  ]

let top_down prog (results : (string, Local.result) Hashtbl.t) order =
  (* callers first *)
  List.iter
    (fun name ->
      let res = Hashtbl.find results name in
      List.iter
        (fun (cs : Graph.call_site) ->
          List.iter
            (fun callee ->
              match Hashtbl.find_opt results callee with
              | None -> ()
              | Some callee_res ->
                  let rec zip formals actuals =
                    match (formals, actuals) with
                    | [], _ | _, [] -> ()
                    | fo :: fs, ao :: as_ ->
                        (match (fo, ao) with
                        | Some (fn, _), Some (an, _) ->
                            List.iter
                              (fun fl ->
                                if Graph.has_flag an fl then begin
                                  if fl = Graph.Collapsed then Graph.collapse fn
                                  else Graph.add_flag fn fl
                                end)
                              td_flags
                        | _ -> ());
                        zip fs as_
                  in
                  zip callee_res.Local.formals cs.Graph.args)
            (resolve_callees prog cs))
        res.Local.graph.Graph.calls)
    (List.rev order)

(** Run all three phases over a whole program. *)
let analyze prog : summary =
  let results = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun f ->
      Hashtbl.replace results f.Func.name (Local.analyze prog f));
  let order, in_cycle = topo_order prog in
  bottom_up prog results order in_cycle;
  (* a fixpoint of two TD rounds covers flag flow through one level of
     formal-to-actual chaining per round; iterate a few times *)
  for _ = 1 to 3 do
    top_down prog results order
  done;
  Hashtbl.iter (fun _ res -> Local.mark_completeness res) results;
  { results; order; in_cycle }
