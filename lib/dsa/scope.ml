(** Scope expansion through static analysis (Chapter 5).

    MDS forbids int-to-pointer casts and assumes pointers are stored and
    loaded as pointers.  DSA removes these blanket restrictions: instead
    of rejecting a program, DPMR *refines its partial replica* — memory
    whose behaviour DSA cannot vouch for (Unknown, int-to-pointer,
    collapsed nodes; §5.2, §5.5) is simply left out of replication, and
    accesses through it keep their original, uninstrumented behaviour
    (§5.3's "eliminating limitations" via the second partial-replication
    motivation of §2.1: components whose state cannot be reasoned about
    need not be replicated).

    The exclusion closure is the markX algorithm of Figure 5.7: once an
    object is excluded, everything reachable from it must be excluded too,
    otherwise update omissions of the Figure 5.4 kind could corrupt the
    replica invariant. *)

open Dpmr_ir

type t = {
  summary : Interproc.summary;
  excluded : (string, (Inst.reg, bool) Hashtbl.t) Hashtbl.t;
}

(** Is [n] a seed for exclusion?  Unknown allocation sources, nodes
    manufactured from integers, and collapsed (type-inhomogeneous) nodes
    (§5.5); nodes whose address escaped to an integer are also excluded,
    because a pointer masquerading as an integer could later be stored
    through them (Figure 5.3's scenario). *)
let is_seed n =
  Graph.has_flag n Graph.Unknown
  || Graph.has_flag n Graph.Int_to_ptr_f
  || Graph.has_flag n Graph.Collapsed

(** Figure 5.7's markX: flag [n] and everything reachable from it. *)
let mark_x n =
  let rec go n =
    let n = Graph.find n in
    if not (Graph.has_flag n Graph.X) then begin
      Graph.add_flag n Graph.X;
      Hashtbl.iter
        (fun _ (c : Graph.cell) ->
          match c.Graph.target with Some (t, _) -> go t | None -> ())
        n.Graph.cells
    end
  in
  go n

(** Run DSA and compute per-function, per-register exclusion. *)
let compute (prog : Prog.t) : t =
  let summary = Interproc.analyze prog in
  (* A pointer manufactured from an integer must be assumed to alias any
     object whose address escaped to an integer (§5.5: unknown nodes may
     alias even complete nodes).  Unify int-to-ptr nodes with P-flagged
     nodes so the exclusion closure covers the plausible alias set. *)
  Hashtbl.iter
    (fun _ (res : Local.result) ->
      let nodes = Graph.all_nodes res.Local.graph in
      let manufactured =
        List.filter (fun n -> Graph.has_flag n Graph.Int_to_ptr_f) nodes
      in
      let address_taken =
        List.filter (fun n -> Graph.has_flag n Graph.Ptr_to_int_f) nodes
      in
      List.iter
        (fun m -> List.iter (fun a -> Graph.unify m a) address_taken)
        manufactured)
    summary.Interproc.results;
  (* seed + close within each graph *)
  Hashtbl.iter
    (fun _ (res : Local.result) ->
      List.iter
        (fun n -> if is_seed (Graph.find n) then mark_x n)
        res.Local.graph.Graph.nodes)
    summary.Interproc.results;
  (* X crosses call boundaries through the top-down flag propagation; one
     more TD round closes it, then re-close within each graph *)
  Interproc.top_down prog summary.Interproc.results summary.Interproc.order;
  Hashtbl.iter
    (fun _ (res : Local.result) ->
      List.iter
        (fun n ->
          let n = Graph.find n in
          if Graph.has_flag n Graph.X then mark_x n)
        res.Local.graph.Graph.nodes)
    summary.Interproc.results;
  let excluded = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name (res : Local.result) ->
      let per_reg = Hashtbl.create 16 in
      Hashtbl.iter
        (fun r (n, _) -> Hashtbl.replace per_reg r (Graph.has_flag n Graph.X))
        res.Local.graph.Graph.regs;
      Hashtbl.replace excluded name per_reg)
    summary.Interproc.results;
  { summary; excluded }

(** [excluded_reg t fname r]: must accesses through register [r] of
    function [fname] be left out of replication? *)
let excluded_reg t fname r =
  match Hashtbl.find_opt t.excluded fname with
  | None -> false
  | Some per_reg -> ( match Hashtbl.find_opt per_reg r with Some b -> b | None -> false)

(** Fraction of DS nodes excluded in a function — the "how much of the
    program keeps full DPMR protection" statistic. *)
let exclusion_ratio t fname =
  match Hashtbl.find_opt t.summary.Interproc.results fname with
  | None -> 0.0
  | Some res ->
      let nodes = Graph.all_nodes res.Local.graph in
      let total = List.length nodes in
      if total = 0 then 0.0
      else
        float_of_int
          (List.length (List.filter (fun n -> Graph.has_flag n Graph.X) nodes))
        /. float_of_int total
