(** Glue: DPMR transformation with the Chapter 5 scope expansion.

    Runs Data Structure Analysis over the input, computes the exclusion
    closure, and invokes the MDS transformation with accesses through
    excluded registers left unreplicated.  The dissertation pairs DSA with
    the MDS design (Chapter 5 builds on Chapter 4); SDS needs shadow
    addressing guarantees that exclusion does not provide, so SDS + DSA is
    rejected. *)

open Dpmr_ir
module Config = Dpmr_core.Config

(** [transform cfg prog] like {!Dpmr_core.Transform.transform}, but
    restrictions that DSA can reason away (int-to-pointer casts, unknown
    allocation sources, type-inhomogeneous memory) no longer reject the
    program — the affected memory is refined out of the partial replica. *)
let transform (cfg : Config.t) (prog : Prog.t) =
  if cfg.Config.mode <> Config.Mds then
    invalid_arg "Dsa_dpmr.transform: the DSA scope expansion requires MDS (Chapter 5)";
  let scope = Scope.compute prog in
  Dpmr_core.Transform.transform
    ~excluded:(fun fname r -> Scope.excluded_reg scope fname r)
    cfg prog

(** Same, also returning the scope for inspection (exclusion ratios). *)
let transform_with_scope (cfg : Config.t) (prog : Prog.t) =
  if cfg.Config.mode <> Config.Mds then
    invalid_arg "Dsa_dpmr.transform: the DSA scope expansion requires MDS (Chapter 5)";
  let scope = Scope.compute prog in
  let tp =
    Dpmr_core.Transform.transform
      ~excluded:(fun fname r -> Scope.excluded_reg scope fname r)
      cfg prog
  in
  (tp, scope)
