(** Bottom-up and top-down phases of Data Structure Analysis (§5.1).

    Bottom-up clones callee graphs into callers (callees first),
    unifying formal clones with actuals and program-wide global nodes;
    top-down propagates caller-side behaviour flags into callee formals.
    Calls inside a call-graph cycle are handled conservatively: their
    argument/return nodes become Unknown (§5.5). *)

open Dpmr_ir

type summary = {
  results : (string, Local.result) Hashtbl.t;
  order : string list;  (** callees first *)
  in_cycle : (string, unit) Hashtbl.t;
}

val direct_callees : Prog.t -> Func.t -> string list
val topo_order : Prog.t -> string list * (string, unit) Hashtbl.t
val resolve_callees : Prog.t -> Graph.call_site -> string list

val bottom_up :
  Prog.t -> (string, Local.result) Hashtbl.t -> string list ->
  (string, unit) Hashtbl.t -> unit

val top_down : Prog.t -> (string, Local.result) Hashtbl.t -> string list -> unit

(** Run all three phases over a whole program. *)
val analyze : Prog.t -> summary
