(** DS graphs: the data structure of Data Structure Analysis (§5.1).

    A DS node represents a set of memory objects and carries the §5.1
    flag set (complete/incomplete, H/S/G memory segments, Array,
    cOllapsed, Ptr-to-int, int-2-ptr, Unknown, plus the markX exclusion
    flag), a type-homogeneity map of field cells, and per-field outgoing
    edges.  Unification uses union-find; a type-inhomogeneous use
    collapses a node's fields into one cell. *)

open Dpmr_ir
open Types

type flag =
  | Complete
  | Heap
  | Stack
  | Global_mem
  | Array
  | Collapsed
  | Ptr_to_int_f  (** P: the node's address was observed as an integer *)
  | Int_to_ptr_f  (** 2: the node was manufactured from an integer *)
  | Unknown  (** U: allocation source unrecognized *)
  | X  (** exclusion mark of the Figure 5.7 markX algorithm *)

module FlagSet : Set.S with type elt = flag

type node = {
  id : int;
  mutable parent : node option;  (** union-find *)
  mutable flags : FlagSet.t;
  mutable globals : string list;
  mutable cells : (int, cell) Hashtbl.t;  (** field offset -> cell *)
}

and cell = { mutable cty : ty option; mutable target : (node * int) option }

type t = {
  mutable nodes : node list;
  mutable next_id : int;
  regs : (Inst.reg, node * int) Hashtbl.t;
  global_nodes : (string, node) Hashtbl.t;
  mutable ret : (node * int) option;
  mutable calls : call_site list;
}

and call_site = {
  callee : callee_info;
  args : (node * int) option list;  (** None for scalar arguments *)
  cs_ret : (node * int) option;
}

and callee_info = Known of string | Through of node

val create : unit -> t
val fresh_node : t -> ?flags:flag list -> unit -> node

(** Union-find representative (path-compressing). *)
val find : node -> node

val has_flag : node -> flag -> bool
val add_flag : node -> flag -> unit
val is_complete : node -> bool
val is_collapsed : node -> bool

val cell_at : node -> int -> cell

(** Collapse all fields into one cell at offset 0 (the O flag). *)
val collapse : node -> unit

(** Unify two nodes and, recursively, the targets of matching fields. *)
val unify : node -> node -> unit

(** Record a scalar access at an offset; conflicting types collapse. *)
val access : node -> int -> ty -> unit

(** Points-to target of a field, created on demand. *)
val target_of : t -> node -> int -> node * int

val set_target : node -> int -> node * int -> unit

val reg_node : t -> Inst.reg -> (node * int) option
val bind_reg : t -> Inst.reg -> node * int -> unit
val global_node : t -> string -> is_fun:bool -> node

(** Ids of nodes reachable from a start node through field edges. *)
val reachable_from : node -> (int, unit) Hashtbl.t

(** Distinct representative nodes. *)
val all_nodes : t -> node list

val flag_to_string : flag -> string
val flags_to_string : node -> string

(** Render the graph in the style of the dissertation's DS-graph figures
    (5.5/5.6). *)
val pp : Format.formatter -> t -> unit
