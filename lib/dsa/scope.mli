(** Scope expansion through static analysis (Chapter 5).

    Instead of rejecting programs with int-to-pointer casts or
    type-inhomogeneous memory, DPMR {e refines its partial replica}:
    memory whose behaviour DSA cannot vouch for is left out of
    replication, and accesses through it keep their original behaviour
    (§5.3, applying the second partial-replication motivation of §2.1).
    The exclusion closure is the markX algorithm of Figure 5.7. *)

open Dpmr_ir

type t

(** Seed predicate: Unknown, int-to-ptr, or collapsed nodes (§5.5). *)
val is_seed : Graph.node -> bool

(** Figure 5.7's markX: flag a node and everything reachable from it. *)
val mark_x : Graph.node -> unit

(** Run DSA and compute the per-function, per-register exclusion map.
    Manufactured (int-to-ptr) nodes are first unified with address-taken
    (P-flagged) nodes — the §5.5 "unknown nodes may alias anything"
    conservatism restricted to the plausible alias set. *)
val compute : Prog.t -> t

(** Must accesses through this register be left out of replication? *)
val excluded_reg : t -> string -> Inst.reg -> bool

(** Fraction of a function's DS nodes excluded. *)
val exclusion_ratio : t -> string -> float
