(** One-time lowering of IR into a pre-resolved, threaded form.

    Compiles each {!Func.t} into arrays of pre-resolved instructions:
    branch targets become block ids, {!Layout} sizes/alignments/offsets
    and cast source widths are baked into the opcodes, constants are
    pre-truncated and pre-boxed, and direct calls bind their lowered
    callee (or a per-VM extern slot) and base cost once.  The {!Vm}
    dispatch loop then executes with array indexing only.

    Static resolution errors (unknown label, bad field index, undefined
    aggregate) are captured as {!Lpoison}/{!Braise} and re-raised —
    unchanged — only if the broken instruction actually executes, so
    lowering never fails where the tree-walking interpreter would have
    succeeded. *)

open Dpmr_ir
open Types

type value = I of int64 | F of float
(** Runtime values: integers and pointers share [I]. *)

val truncate_to : width -> int64 -> int64
val sign_extend : width -> int64 -> int64

(** Lowered operands.  Globals and function addresses stay symbolic:
    global addresses are per-VM, and function addresses are assigned
    lazily in first-use order at run time. *)
type lop =
  | Lreg of int
  | Lconst of value  (** pre-truncated, pre-boxed constant *)
  | Lglobal of string
  | Lfun_name of string

(** Scalar shape of a load/store; pointers move as 8-byte integers. *)
type lkind =
  | Kint of int  (** byte width *)
  | Kfloat
  | Kbad  (** non-scalar: raises at execution, like the tree-walker *)

(** Branch target: a block id, or the exception {!Func.find_block} would
    have raised had the branch executed. *)
type starget = Bidx of int | Braise of exn

(** Compiled-tier attachment point, extensible so this module stays
    ignorant of the compiler: {!Compile} adds a constructor carrying the
    closure-compiled code; everyone else only sees {!Tier3_none}. *)
type tier3 = ..

type tier3 += Tier3_none

type lfunc = {
  lname : string;
  lparams : int array;  (** parameter register indices *)
  lnregs : int;
  mutable lblocks : lblock array;  (** entry block at index 0 *)
  mutable lhot : int;
      (** lowered blocks executed in this function (the tier-promotion
          counter); heuristic state, never part of program identity *)
  mutable ltier3 : tier3;  (** compiled code, once promoted *)
}

and lblock = {
  linsts : linst array;
  lterm : lterm;
  mutable lflags : int;  (** static block facts, see {!b_call} *)
}

and lterm =
  | Lbr of starget
  | Lcbr of lop * starget * starget
  | Lcheck of lop * starget * starget * bool * bool
      (** an [Lcbr] with at least one detection-block target (a block whose
          first instruction calls [__dpmr_detect]) — an inline replica
          load-check compiled by the diversity transform.  The booleans say
          which targets are detection blocks; execution is identical to
          [Lcbr] apart from trace-sink reporting. *)
  | Lcmpbr of int * Inst.icond * width * lop * lop * starget * starget
      (** fused [Licmp] + [Lcbr] branching on the compare's destination
          register; still writes the register and charges both costs *)
  | Lcmpcheck of int * Inst.icond * width * lop * lop * starget * starget * bool * bool
      (** fused [Licmp] + [Lcheck] *)
  | Lret of lop option
  | Lunreachable of string  (** pre-formatted error message *)

and lcallee =
  | Lfun of lfunc  (** direct call to a defined function *)
  | Lextern of int * string  (** direct call to an extern: slot, name *)
  | Lindirect of lop

and linst =
  | Lmalloc of int * int * lop  (** reg, element size, count *)
  | Lalloca of int * int * int * lop  (** reg, element size, align, count *)
  | Lfree of lop
  | Lload of int * lkind * lop
  | Lstore of lkind * lop * lop  (** kind, value, pointer *)
  | Lgep_field of int * int * lop  (** reg, byte offset, pointer *)
  | Lgep_index of int * int * lop * lop  (** reg, elem size, pointer, index *)
  | Lmov of int * lop  (** bitcast / ptr_to_int / int_to_ptr: cast-cost copy *)
  | Lbinop of int * Inst.binop * width * lop * lop
  | Lfbinop of int * Inst.fbinop * lop * lop
  | Licmp of int * Inst.icond * width * lop * lop
  | Lfcmp of int * Inst.fcond * lop * lop
  | Lint_cast of int * width * bool * width * lop
      (** reg, dest width, signed, source width, value *)
  | Lf_to_i of int * width * lop
  | Li_to_f of int * width * lop  (** reg, source width, value *)
  | Lselect of int * lop * lop * lop
  | Lcall of int option * lcallee * lop array * int  (** pre-computed cost *)
  | Lpoison of exn  (** static resolution failed; re-raise when executed *)
  | Lload_idx of int * lkind * int * int * lop * lop
      (** fused [Lgep_index]+[Lload]: dest reg, kind, addr reg, elem size,
          base, index — identical effect sequence, one dispatch *)
  | Lstore_idx of lkind * lop * int * int * lop * lop
      (** fused [Lgep_index]+[Lstore]: kind, value, addr reg, elem size,
          base, index *)
  | Lload_fld of int * lkind * int * int * lop
      (** fused [Lgep_field]+[Lload]: dest reg, kind, addr reg, byte
          offset, base *)
  | Lstore_fld of lkind * lop * int * int * lop
      (** fused [Lgep_field]+[Lstore]: kind, value, addr reg, byte offset,
          base *)

type prog = {
  funcs : (string, lfunc) Hashtbl.t;
  slot_of_name : (string, int) Hashtbl.t;
      (** extern slot per direct-callee name; the VM resolves each slot to
          a closure once per instance *)
  mutable n_slots : int;
  src : Prog.t;  (** the program this was lowered from *)
}

val b_call : int
(** {!lblock.lflags} bit: the block contains a call — its boundary is a
    compiled-tier deoptimization point (the call may activate fault
    injection mid-block). *)

val b_check : int
(** {!lblock.lflags} bit: the block ends in a replica load-check
    ([Lcheck]/[Lcmpcheck]) — fidelity-relevant under a trace sink. *)

(** Lower a whole program.  Cheap enough to run once per program build;
    the result is immutable (apart from the per-function tier state,
    which never affects behaviour) and may be shared by any number of
    VMs executing the same (unmodified) program. *)
val lower_prog : Prog.t -> prog

(** {1 Structural divergence, for snapshot/fork campaign execution} *)

(** Baseline-index → member-index correspondence for one function, as
    discovered by the alpha matcher of {!diff_limits}: fault injection
    inserts code mid-function, shifting every builder-assigned register
    and block index downstream of the site, so structural comparison is
    done modulo this bijection.  [-1] = never matched (the entry is dead
    below the divergence frontier).  {!Vm.resume} uses it to translate a
    captured baseline frame into the member's numbering. *)
type remap = {
  rm_regs : int array;  (** baseline register → member register *)
  rm_blocks : int array;  (** baseline block id → member block id *)
}

type func_diff = {
  fd_limits : int array;
      (** per baseline block: first instruction index at which the
          programs differ modulo the remap ([Array.length linsts] =
          terminator-only difference, [max_int] = matched block) *)
  fd_remap : remap option;  (** [None] = identity (pure positional match) *)
}

(** [diff_limits base fi] — per-function structural divergence of [fi]
    against [base], modulo register/block renaming; functions absent
    from the table are positionally identical.  Executing [base] is
    bit-identical (modulo the remap, invisible to behaviour) to
    executing [fi] until the first arrival at a limit position.  [None]
    when no common prefix exists (globals or function set differ). *)
val diff_limits : prog -> prog -> (string, func_diff) Hashtbl.t option

(** Watch-limit projection of a member diff: what {!Vm.run_watched}
    consumes.  Limit arrays are shared with the diff, not copied. *)
val limit_table :
  (string, func_diff) Hashtbl.t -> (string, int array) Hashtbl.t

(** Elementwise-minimum merge of watch limits into the first table. *)
val merge_limits :
  (string, int array) Hashtbl.t -> (string, int array) Hashtbl.t -> unit
