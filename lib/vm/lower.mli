(** One-time lowering of IR into a pre-resolved, threaded form.

    Compiles each {!Func.t} into arrays of pre-resolved instructions:
    branch targets become block ids, {!Layout} sizes/alignments/offsets
    and cast source widths are baked into the opcodes, constants are
    pre-truncated and pre-boxed, and direct calls bind their lowered
    callee (or a per-VM extern slot) and base cost once.  The {!Vm}
    dispatch loop then executes with array indexing only.

    Static resolution errors (unknown label, bad field index, undefined
    aggregate) are captured as {!Lpoison}/{!Braise} and re-raised —
    unchanged — only if the broken instruction actually executes, so
    lowering never fails where the tree-walking interpreter would have
    succeeded. *)

open Dpmr_ir
open Types

type value = I of int64 | F of float
(** Runtime values: integers and pointers share [I]. *)

val truncate_to : width -> int64 -> int64
val sign_extend : width -> int64 -> int64

(** Lowered operands.  Globals and function addresses stay symbolic:
    global addresses are per-VM, and function addresses are assigned
    lazily in first-use order at run time. *)
type lop =
  | Lreg of int
  | Lconst of value  (** pre-truncated, pre-boxed constant *)
  | Lglobal of string
  | Lfun_name of string

(** Scalar shape of a load/store; pointers move as 8-byte integers. *)
type lkind =
  | Kint of int  (** byte width *)
  | Kfloat
  | Kbad  (** non-scalar: raises at execution, like the tree-walker *)

(** Branch target: a block id, or the exception {!Func.find_block} would
    have raised had the branch executed. *)
type starget = Bidx of int | Braise of exn

type lfunc = {
  lname : string;
  lparams : int array;  (** parameter register indices *)
  lnregs : int;
  mutable lblocks : lblock array;  (** entry block at index 0 *)
}

and lblock = { linsts : linst array; lterm : lterm }

and lterm =
  | Lbr of starget
  | Lcbr of lop * starget * starget
  | Lcheck of lop * starget * starget * bool * bool
      (** an [Lcbr] with at least one detection-block target (a block whose
          first instruction calls [__dpmr_detect]) — an inline replica
          load-check compiled by the diversity transform.  The booleans say
          which targets are detection blocks; execution is identical to
          [Lcbr] apart from trace-sink reporting. *)
  | Lret of lop option
  | Lunreachable of string  (** pre-formatted error message *)

and lcallee =
  | Lfun of lfunc  (** direct call to a defined function *)
  | Lextern of int * string  (** direct call to an extern: slot, name *)
  | Lindirect of lop

and linst =
  | Lmalloc of int * int * lop  (** reg, element size, count *)
  | Lalloca of int * int * int * lop  (** reg, element size, align, count *)
  | Lfree of lop
  | Lload of int * lkind * lop
  | Lstore of lkind * lop * lop  (** kind, value, pointer *)
  | Lgep_field of int * int * lop  (** reg, byte offset, pointer *)
  | Lgep_index of int * int * lop * lop  (** reg, elem size, pointer, index *)
  | Lmov of int * lop  (** bitcast / ptr_to_int / int_to_ptr: cast-cost copy *)
  | Lbinop of int * Inst.binop * width * lop * lop
  | Lfbinop of int * Inst.fbinop * lop * lop
  | Licmp of int * Inst.icond * width * lop * lop
  | Lfcmp of int * Inst.fcond * lop * lop
  | Lint_cast of int * width * bool * width * lop
      (** reg, dest width, signed, source width, value *)
  | Lf_to_i of int * width * lop
  | Li_to_f of int * width * lop  (** reg, source width, value *)
  | Lselect of int * lop * lop * lop
  | Lcall of int option * lcallee * lop array * int  (** pre-computed cost *)
  | Lpoison of exn  (** static resolution failed; re-raise when executed *)

type prog = {
  funcs : (string, lfunc) Hashtbl.t;
  slot_of_name : (string, int) Hashtbl.t;
      (** extern slot per direct-callee name; the VM resolves each slot to
          a closure once per instance *)
  mutable n_slots : int;
  src : Prog.t;  (** the program this was lowered from *)
}

(** Lower a whole program.  Cheap enough to run once per program build;
    the result is immutable and may be shared by any number of VMs
    executing the same (unmodified) program. *)
val lower_prog : Prog.t -> prog
