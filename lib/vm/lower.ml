(** One-time lowering of IR into a pre-resolved, threaded form.

    The tree-walking interpreter re-derived static facts on every dynamic
    instruction: branch targets through a label hashtable, struct layouts
    by recursive walks over the type environment, cast source widths via
    {!Prog.operand_ty}, callees through two hashtable probes, and constant
    operands re-truncated at each evaluation.  All of that is a function
    of the program text, so this pass computes it once per static
    instruction and emits a form the VM dispatch loop can execute with
    array indexing only:

    - blocks become an array indexed by block id; branches carry ids;
    - [Malloc]/[Alloca]/[Gep_*] carry element sizes, alignments and field
      byte offsets from {!Layout};
    - [Int_cast]/[I_to_f] carry the pre-resolved source width;
    - constants are pre-truncated and pre-boxed as runtime values;
    - direct calls bind the lowered callee (or a per-VM extern slot) and
      their base cost once.

    Lowering never fails where the tree-walker would have succeeded: any
    static resolution error (unknown label, bad field index, undefined
    aggregate) is captured and replayed as the {e same} exception only if
    the offending instruction is actually executed, via {!Lpoison} and
    {!Braise} — dead broken code stays dead, as it was for the
    tree-walker. *)

open Dpmr_ir
open Types
open Inst

type value = I of int64 | F of float

(* The [W64] arms apply an identity operation instead of returning [v]
   directly: when every arm of the match is an arithmetic expression the
   compiler keeps the joined [int64] unboxed in callers, whereas a bare
   variable arm forces a heap box per evaluation (measured: one minor
   allocation per executed ALU instruction). *)
let[@inline] truncate_to w v =
  match w with
  | W8 -> Int64.logand v 0xFFL
  | W16 -> Int64.logand v 0xFFFFL
  | W32 -> Int64.logand v 0xFFFFFFFFL
  | W64 -> Int64.logand v (-1L)

let[@inline] sign_extend w v =
  match w with
  | W8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | W16 -> Int64.shift_right (Int64.shift_left v 48) 48
  | W32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | W64 -> Int64.shift_right (Int64.shift_left v 0) 0

(** Lowered operands.  Globals and function addresses stay symbolic:
    global addresses are per-VM, and function addresses are assigned
    lazily {e in first-use order} at run time — pre-assigning them here
    would change the address values a program can print or compare. *)
type lop =
  | Lreg of int
  | Lconst of value  (** pre-truncated, pre-boxed constant *)
  | Lglobal of string
  | Lfun_name of string

(** Scalar shape of a load/store, resolved from the static type.
    Pointers load/store as 8-byte integers. *)
type lkind =
  | Kint of int  (** byte width *)
  | Kfloat
  | Kbad  (** non-scalar: raises at execution, like the tree-walker *)

(** Branch target: a block id, or the exception {!Func.find_block} would
    have raised had the branch executed. *)
type starget = Bidx of int | Braise of exn

(** Compiled-tier attachment point.  Extensible so this module stays
    ignorant of the compiler: {!Compile} adds its own constructor
    carrying the closure-compiled code, and everyone else only ever
    sees {!Tier3_none}. *)
type tier3 = ..

type tier3 += Tier3_none

type lfunc = {
  lname : string;
  lparams : int array;  (** parameter register indices *)
  lnregs : int;
  mutable lblocks : lblock array;  (** entry block at index 0 *)
  mutable lhot : int;
      (** lowered blocks executed in this function (promotion counter);
          heuristic state only — never part of program identity *)
  mutable ltier3 : tier3;  (** compiled code, once promoted *)
}

and lblock = {
  linsts : linst array;
  lterm : lterm;
  mutable lflags : int;
      (** static block facts for the compiled tier, see {!b_call} *)
}

and lterm =
  | Lbr of starget
  | Lcbr of lop * starget * starget
  | Lcheck of lop * starget * starget * bool * bool
      (** a [Lcbr] with at least one detection-block target (a block whose
          first instruction calls [__dpmr_detect]) — i.e. an inline replica
          load-check compiled by the diversity transform.  The booleans say
          which targets are detection blocks.  Executes exactly like
          [Lcbr]; the lowered engine additionally reports a passed
          comparison to an installed trace sink when the branch takes a
          non-detection target. *)
  | Lcmpbr of int * Inst.icond * width * lop * lop * starget * starget
      (** fused [Licmp] + [Lcbr] on the compare's destination register:
          the single most common dynamic pair (every loop back edge).
          Still writes the compare result to the register, still charges
          [Cost.cmp] then [Cost.cond_branch] — byte-identical to the
          unfused sequence, one dispatch instead of two. *)
  | Lcmpcheck of int * Inst.icond * width * lop * lop * starget * starget * bool * bool
      (** fused [Licmp] + [Lcheck]; see {!Lcmpbr} and {!Lcheck} *)
  | Lret of lop option
  | Lunreachable of string  (** pre-formatted error message *)

and lcallee =
  | Lfun of lfunc  (** direct call to a defined function *)
  | Lextern of int * string  (** direct call to an extern: slot, name *)
  | Lindirect of lop

and linst =
  | Lmalloc of int * int * lop  (** reg, element size, count *)
  | Lalloca of int * int * int * lop  (** reg, element size, align, count *)
  | Lfree of lop
  | Lload of int * lkind * lop
  | Lstore of lkind * lop * lop  (** kind, value, pointer *)
  | Lgep_field of int * int * lop  (** reg, byte offset, pointer *)
  | Lgep_index of int * int * lop * lop  (** reg, elem size, pointer, index *)
  | Lmov of int * lop  (** bitcast / ptr_to_int / int_to_ptr: cast-cost copy *)
  | Lbinop of int * binop * width * lop * lop
  | Lfbinop of int * fbinop * lop * lop
  | Licmp of int * icond * width * lop * lop
  | Lfcmp of int * fcond * lop * lop
  | Lint_cast of int * width * bool * width * lop
      (** reg, dest width, signed, source width, value *)
  | Lf_to_i of int * width * lop
  | Li_to_f of int * width * lop  (** reg, source width, value *)
  | Lselect of int * lop * lop * lop
  | Lcall of int option * lcallee * lop array * int  (** pre-computed cost *)
  | Lpoison of exn  (** static resolution failed; re-raise when executed *)
  (* Fused address+access superinstructions.  Array and field accesses
     lower to a [Lgep_*] immediately followed by a load/store through the
     just-computed register — two dispatches and a register round trip per
     memory access.  The fused forms perform the exact same effect
     sequence (gep cost, write the address register, then access cost and
     the access itself), so cost accounting, faults and register contents
     are bit-identical; only the dispatch count changes. *)
  | Lload_idx of int * lkind * int * int * lop * lop
      (** dest reg, kind, addr reg, elem size, base, index *)
  | Lstore_idx of lkind * lop * int * int * lop * lop
      (** kind, value, addr reg, elem size, base, index *)
  | Lload_fld of int * lkind * int * int * lop
      (** dest reg, kind, addr reg, byte offset, base *)
  | Lstore_fld of lkind * lop * int * int * lop
      (** kind, value, addr reg, byte offset, base *)

type prog = {
  funcs : (string, lfunc) Hashtbl.t;
  slot_of_name : (string, int) Hashtbl.t;
      (** extern slot per direct-callee name; the VM resolves each slot to
          a closure once per instance *)
  mutable n_slots : int;
  src : Prog.t;  (** the program this was lowered from *)
}

let lower_operand = function
  | Reg r -> Lreg r
  | Cint (w, v) -> Lconst (I (truncate_to w v))
  | Cfloat x -> Lconst (F x)
  | Null _ -> Lconst (I 0L)
  | Global g -> Lglobal g
  | Fun_addr f -> Lfun_name f

let kind_of = function
  | Float -> Kfloat
  | Int w -> Kint (bytes_of_width w)
  | Ptr _ -> Kint 8
  | _ -> Kbad

(* Source width of an integer cast: values are kept zero-extended to
   their own width, so sign extension needs the operand's static type. *)
let src_width p f v =
  match Prog.operand_ty p f v with Int w -> w | _ -> W64

let slot_for lp name =
  match Hashtbl.find_opt lp.slot_of_name name with
  | Some i -> i
  | None ->
      let i = lp.n_slots in
      lp.n_slots <- i + 1;
      Hashtbl.replace lp.slot_of_name name i;
      i

let lower_inst lp (p : Prog.t) (f : Func.t) (inst : Inst.inst) : linst =
  let tenv = p.Prog.tenv in
  try
    match inst with
    | Malloc (r, ty, n) -> Lmalloc (r, Layout.size_of tenv ty, lower_operand n)
    | Alloca (r, ty, n) ->
        Lalloca
          ( r,
            Layout.size_of tenv ty,
            max 8 (Layout.align_of tenv ty),
            lower_operand n )
    | Free o -> Lfree (lower_operand o)
    | Load (r, ty, o) -> Lload (r, kind_of ty, lower_operand o)
    | Store (ty, v, o) -> Lstore (kind_of ty, lower_operand v, lower_operand o)
    | Gep_field (r, sname, o, i) ->
        Lgep_field (r, Layout.field_offset tenv sname i, lower_operand o)
    | Gep_index (r, ety, o, i) ->
        Lgep_index (r, Layout.size_of tenv ety, lower_operand o, lower_operand i)
    | Bitcast (r, _, o) | Ptr_to_int (r, o) | Int_to_ptr (r, _, o) ->
        Lmov (r, lower_operand o)
    | Binop (r, op, w, a, b) -> Lbinop (r, op, w, lower_operand a, lower_operand b)
    | Fbinop (r, op, a, b) -> Lfbinop (r, op, lower_operand a, lower_operand b)
    | Icmp (r, c, w, a, b) -> Licmp (r, c, w, lower_operand a, lower_operand b)
    | Fcmp (r, c, a, b) -> Lfcmp (r, c, lower_operand a, lower_operand b)
    | Int_cast (r, w, signed, v) ->
        Lint_cast (r, w, signed, src_width p f v, lower_operand v)
    | F_to_i (r, w, v) -> Lf_to_i (r, w, lower_operand v)
    | I_to_f (r, _, v) -> Li_to_f (r, src_width p f v, lower_operand v)
    | Select (r, _, c, a, b) ->
        Lselect (r, lower_operand c, lower_operand a, lower_operand b)
    | Call (r, callee, args) ->
        let lc =
          match callee with
          | Direct n -> (
              match Hashtbl.find_opt lp.funcs n with
              | Some lf -> Lfun lf
              | None -> Lextern (slot_for lp n, n))
          | Indirect o -> Lindirect (lower_operand o)
        in
        Lcall
          ( r,
            lc,
            Array.of_list (List.map lower_operand args),
            Cost.call_base + (Cost.call_per_arg * List.length args) )
  with (Invalid_argument _ | Failure _ | Not_found) as e -> Lpoison e

let lower_target (f : Func.t) label =
  match try Some (Func.block_index f label) with Invalid_argument _ -> None with
  | Some i -> Bidx i
  | None ->
      (* replay find_block's lazy failure, message included *)
      Braise
        (Invalid_argument
           (Printf.sprintf "Func.find_block: %s has no block %S" f.Func.name
              label))

let lower_term (f : Func.t) : Inst.term -> lterm = function
  | Br l -> Lbr (lower_target f l)
  | Cbr (c, l1, l2) -> Lcbr (lower_operand c, lower_target f l1, lower_target f l2)
  | Ret o -> Lret (Option.map lower_operand o)
  | Unreachable -> Lunreachable (f.Func.name ^ ": executed unreachable")

(* Block flags: deopt-relevant static facts the compiled tier consults.
   [b_call] marks blocks whose boundary is a deoptimization point (a
   call inside may activate fault injection); [b_check] marks blocks
   ending in a replica load-check, whose compare events make them
   fidelity-relevant under a trace sink. *)
let b_call = 1
let b_check = 2

let block_flags (b : lblock) =
  let f = ref 0 in
  Array.iter
    (function Lcall _ -> f := !f lor b_call | _ -> ())
    b.linsts;
  (match b.lterm with
  | Lcheck _ | Lcmpcheck _ -> f := !f lor b_check
  | _ -> ());
  !f

let shell (f : Func.t) =
  {
    lname = f.Func.name;
    lparams = Array.of_list (List.map fst f.Func.params);
    lnregs = f.Func.next_reg;
    lblocks = [||];
    lhot = 0;
    ltier3 = Tier3_none;
  }

(* Peephole superinstruction fusion.  Merges each [Lgep_index]/[Lgep_field]
   with an immediately following load/store through the address register it
   just wrote.  The fused opcodes replay the identical effect sequence, so
   every observable — cost counter, register file, faults, trace events —
   is unchanged; only the dynamic dispatch count drops. *)
let fuse_insts (insts : linst array) : linst array =
  let n = Array.length insts in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let fused =
      if !i + 1 >= n then None
      else
        match (insts.(!i), insts.(!i + 1)) with
        | Lgep_index (rp, esz, p, idx), Lload (r, k, Lreg rp') when rp' = rp ->
            Some (Lload_idx (r, k, rp, esz, p, idx))
        | Lgep_index (rp, esz, p, idx), Lstore (k, v, Lreg rp') when rp' = rp ->
            Some (Lstore_idx (k, v, rp, esz, p, idx))
        | Lgep_field (rp, off, p), Lload (r, k, Lreg rp') when rp' = rp ->
            Some (Lload_fld (r, k, rp, off, p))
        | Lgep_field (rp, off, p), Lstore (k, v, Lreg rp') when rp' = rp ->
            Some (Lstore_fld (k, v, rp, off, p))
        | _ -> None
    in
    match fused with
    | Some f ->
        out := f :: !out;
        i := !i + 2
    | None ->
        out := insts.(!i) :: !out;
        incr i
  done;
  Array.of_list (List.rev !out)

(* Fuse a trailing [Licmp] into a conditional terminator that branches on
   its destination register — the hottest pair of all (loop back edges).
   Runs after {!mark_checks} so both [Lcbr] and [Lcheck] shapes fuse. *)
let fuse_terms lf =
  lf.lblocks <-
    Array.map
      (fun b ->
        let n = Array.length b.linsts in
        if n = 0 then b
        else
          match (b.linsts.(n - 1), b.lterm) with
          | Licmp (r, c, w, x, y), Lcbr (Lreg r', t1, t2) when r' = r ->
              {
                linsts = Array.sub b.linsts 0 (n - 1);
                lterm = Lcmpbr (r, c, w, x, y, t1, t2);
                lflags = 0;
              }
          | Licmp (r, c, w, x, y), Lcheck (Lreg r', t1, t2, d1, d2) when r' = r ->
              {
                linsts = Array.sub b.linsts 0 (n - 1);
                lterm = Lcmpcheck (r, c, w, x, y, t1, t2, d1, d2);
                lflags = 0;
              }
          | _ -> b)
      lf.lblocks

(* Rewrite [Lcbr]s whose target is a detection block (first instruction
   calls [__dpmr_detect]) into [Lcheck], so the VM can recognize inline
   replica load-checks without any per-branch lookup at run time. *)
let mark_checks lf =
  let starts_detect (b : lblock) =
    Array.length b.linsts > 0
    &&
    match b.linsts.(0) with
    | Lcall (_, Lextern (_, "__dpmr_detect"), _, _) -> true
    | _ -> false
  in
  let det = Array.map starts_detect lf.lblocks in
  if Array.exists Fun.id det then begin
    let is_det = function Bidx i -> det.(i) | Braise _ -> false in
    lf.lblocks <-
      Array.map
        (fun b ->
          match b.lterm with
          | Lcbr (c, t1, t2) when is_det t1 || is_det t2 ->
              { b with lterm = Lcheck (c, t1, t2, is_det t1, is_det t2) }
          | _ -> b)
        lf.lblocks
  end

let fill_body lp p (f : Func.t) lf =
  lf.lblocks <-
    Array.map
      (fun (b : Func.block) ->
        {
          linsts = fuse_insts (Array.of_list (List.map (lower_inst lp p f) b.Func.insts));
          lterm = lower_term f b.Func.term;
          lflags = 0;
        })
      (Func.block_array f);
  mark_checks lf;
  fuse_terms lf;
  (* flags last: both fusions above reshape instruction arrays and
     terminators *)
  Array.iter (fun b -> b.lflags <- block_flags b) lf.lblocks

(* Two phases so mutually recursive call knots resolve: every function
   gets a shell first, then bodies are filled in place — [Lfun] callees
   hold the shell whose blocks appear in phase two. *)
let lower_prog (p : Prog.t) : prog =
  let lp =
    {
      funcs = Hashtbl.create 64;
      slot_of_name = Hashtbl.create 16;
      n_slots = 0;
      src = p;
    }
  in
  Prog.iter_funcs p (fun f -> Hashtbl.replace lp.funcs f.Func.name (shell f));
  Prog.iter_funcs p (fun f ->
      fill_body lp p f (Hashtbl.find lp.funcs f.Func.name));
  lp

(* ------------------------------------------------------------------ *)
(* Structural divergence (snapshot/fork planning)                      *)
(* ------------------------------------------------------------------ *)

(* Equality is by observable behaviour, not representation: extern slots
   are per-program numbering (compare the name), callees compare by name
   (lfuncs are cyclic), captured static-error exceptions compare by
   constructor and rendering, floats by bit pattern. *)

let exn_eq a b =
  a == b
  || (Printexc.exn_slot_id a = Printexc.exn_slot_id b
     && String.equal (Printexc.to_string a) (Printexc.to_string b))

let value_eq a b =
  match (a, b) with
  | I x, I y -> Int64.equal x y
  | F x, F y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | _ -> false

(* Register and block-target handling is pluggable: [m_use]/[m_def]
   judge operand and destination registers, [m_blk] branch targets.  The
   identity matcher gives plain positional structural equality; the
   alpha matcher of {!diff_limits} instead grows a baseline→member
   bijection as it walks, so pure renumbering — fault injection
   consuming builder names upstream of otherwise untouched code — no
   longer reads as divergence. *)
type matcher = {
  m_use : int -> int -> bool;
  m_def : int -> int -> bool;
  m_blk : int -> int -> bool;
}

let ident = { m_use = Int.equal; m_def = Int.equal; m_blk = Int.equal }

let lop_m m a b =
  match (a, b) with
  | Lreg x, Lreg y -> m.m_use x y
  | Lconst x, Lconst y -> value_eq x y
  | Lglobal x, Lglobal y -> String.equal x y
  | Lfun_name x, Lfun_name y -> String.equal x y
  | _ -> false

let lkind_eq a b =
  match (a, b) with
  | Kint x, Kint y -> x = y
  | Kfloat, Kfloat | Kbad, Kbad -> true
  | _ -> false

let starget_m m a b =
  match (a, b) with
  | Bidx x, Bidx y -> m.m_blk x y
  | Braise x, Braise y -> exn_eq x y
  | _ -> false

let lcallee_m m a b =
  match (a, b) with
  | Lfun f, Lfun g -> String.equal f.lname g.lname
  | Lextern (_, n1), Lextern (_, n2) -> String.equal n1 n2
  | Lindirect x, Lindirect y -> lop_m m x y
  | _ -> false

let ops_m m xs ys =
  Array.length xs = Array.length ys
  &&
  let rec go i = i >= Array.length xs || (lop_m m xs.(i) ys.(i) && go (i + 1)) in
  go 0

(* Operand (use) positions are matched before destination (def)
   positions, so a def only extends the bijection once the instruction's
   reads agree.  Pre-computed call costs compare exactly: a call whose
   callee body diverged charges differently and cannot be shared. *)
let linst_m m a b =
  match (a, b) with
  | Lmalloc (r1, s1, n1), Lmalloc (r2, s2, n2) -> s1 = s2 && lop_m m n1 n2 && m.m_def r1 r2
  | Lalloca (r1, s1, a1, n1), Lalloca (r2, s2, a2, n2) ->
      s1 = s2 && a1 = a2 && lop_m m n1 n2 && m.m_def r1 r2
  | Lfree p1, Lfree p2 -> lop_m m p1 p2
  | Lload (r1, k1, p1), Lload (r2, k2, p2) ->
      lkind_eq k1 k2 && lop_m m p1 p2 && m.m_def r1 r2
  | Lstore (k1, v1, p1), Lstore (k2, v2, p2) ->
      lkind_eq k1 k2 && lop_m m v1 v2 && lop_m m p1 p2
  | Lgep_field (r1, o1, p1), Lgep_field (r2, o2, p2) ->
      o1 = o2 && lop_m m p1 p2 && m.m_def r1 r2
  | Lgep_index (r1, s1, p1, i1), Lgep_index (r2, s2, p2, i2) ->
      s1 = s2 && lop_m m p1 p2 && lop_m m i1 i2 && m.m_def r1 r2
  | Lmov (r1, p1), Lmov (r2, p2) -> lop_m m p1 p2 && m.m_def r1 r2
  | Lbinop (r1, op1, w1, a1, b1), Lbinop (r2, op2, w2, a2, b2) ->
      op1 = op2 && w1 = w2 && lop_m m a1 a2 && lop_m m b1 b2 && m.m_def r1 r2
  | Lfbinop (r1, op1, a1, b1), Lfbinop (r2, op2, a2, b2) ->
      op1 = op2 && lop_m m a1 a2 && lop_m m b1 b2 && m.m_def r1 r2
  | Licmp (r1, c1, w1, a1, b1), Licmp (r2, c2, w2, a2, b2) ->
      c1 = c2 && w1 = w2 && lop_m m a1 a2 && lop_m m b1 b2 && m.m_def r1 r2
  | Lfcmp (r1, c1, a1, b1), Lfcmp (r2, c2, a2, b2) ->
      c1 = c2 && lop_m m a1 a2 && lop_m m b1 b2 && m.m_def r1 r2
  | Lint_cast (r1, w1, s1, sw1, v1), Lint_cast (r2, w2, s2, sw2, v2) ->
      w1 = w2 && s1 = s2 && sw1 = sw2 && lop_m m v1 v2 && m.m_def r1 r2
  | Lf_to_i (r1, w1, v1), Lf_to_i (r2, w2, v2) ->
      w1 = w2 && lop_m m v1 v2 && m.m_def r1 r2
  | Li_to_f (r1, w1, v1), Li_to_f (r2, w2, v2) ->
      w1 = w2 && lop_m m v1 v2 && m.m_def r1 r2
  | Lselect (r1, c1, a1, b1), Lselect (r2, c2, a2, b2) ->
      lop_m m c1 c2 && lop_m m a1 a2 && lop_m m b1 b2 && m.m_def r1 r2
  | Lcall (r1, c1, a1, k1), Lcall (r2, c2, a2, k2) ->
      k1 = k2 && lcallee_m m c1 c2 && ops_m m a1 a2
      && (match (r1, r2) with
         | Some x, Some y -> m.m_def x y
         | None, None -> true
         | _ -> false)
  | Lpoison e1, Lpoison e2 -> exn_eq e1 e2
  | Lload_idx (r1, k1, p1, s1, b1, i1), Lload_idx (r2, k2, p2, s2, b2, i2) ->
      lkind_eq k1 k2 && s1 = s2 && lop_m m b1 b2 && lop_m m i1 i2 && m.m_def p1 p2
      && m.m_def r1 r2
  | Lstore_idx (k1, v1, p1, s1, b1, i1), Lstore_idx (k2, v2, p2, s2, b2, i2) ->
      lkind_eq k1 k2 && s1 = s2 && lop_m m v1 v2 && lop_m m b1 b2 && lop_m m i1 i2
      && m.m_def p1 p2
  | Lload_fld (r1, k1, p1, o1, b1), Lload_fld (r2, k2, p2, o2, b2) ->
      lkind_eq k1 k2 && o1 = o2 && lop_m m b1 b2 && m.m_def p1 p2 && m.m_def r1 r2
  | Lstore_fld (k1, v1, p1, o1, b1), Lstore_fld (k2, v2, p2, o2, b2) ->
      lkind_eq k1 k2 && o1 = o2 && lop_m m v1 v2 && lop_m m b1 b2 && m.m_def p1 p2
  | _ -> false

let lterm_m m a b =
  match (a, b) with
  | Lbr t1, Lbr t2 -> starget_m m t1 t2
  | Lcbr (c1, x1, y1), Lcbr (c2, x2, y2) ->
      lop_m m c1 c2 && starget_m m x1 x2 && starget_m m y1 y2
  | Lcheck (c1, x1, y1, d1, e1), Lcheck (c2, x2, y2, d2, e2) ->
      d1 = d2 && e1 = e2 && lop_m m c1 c2 && starget_m m x1 x2 && starget_m m y1 y2
  | Lcmpbr (r1, c1, w1, a1, b1, x1, y1), Lcmpbr (r2, c2, w2, a2, b2, x2, y2) ->
      c1 = c2 && w1 = w2 && lop_m m a1 a2 && lop_m m b1 b2 && m.m_def r1 r2
      && starget_m m x1 x2 && starget_m m y1 y2
  | Lcmpcheck (r1, c1, w1, a1, b1, x1, y1, d1, e1), Lcmpcheck (r2, c2, w2, a2, b2, x2, y2, d2, e2)
    ->
      c1 = c2 && w1 = w2 && d1 = d2 && e1 = e2 && lop_m m a1 a2 && lop_m m b1 b2
      && m.m_def r1 r2 && starget_m m x1 x2 && starget_m m y1 y2
  | Lret None, Lret None -> true
  | Lret (Some o1), Lret (Some o2) -> lop_m m o1 o2
  | Lunreachable m1, Lunreachable m2 -> String.equal m1 m2
  | _ -> false

let ginit_eq =
  let rec go a b =
    match ((a : Prog.ginit), (b : Prog.ginit)) with
    | Prog.Gzero, Prog.Gzero | Prog.Gptr_null, Prog.Gptr_null -> true
    | Prog.Gint x, Prog.Gint y -> Int64.equal x y
    | Prog.Gfloat x, Prog.Gfloat y ->
        Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | Prog.Gptr_global x, Prog.Gptr_global y | Prog.Gptr_fun x, Prog.Gptr_fun y ->
        String.equal x y
    | Prog.Gstring x, Prog.Gstring y -> String.equal x y
    | Prog.Gagg xs, Prog.Gagg ys ->
        List.length xs = List.length ys && List.for_all2 go xs ys
    | _ -> false
  in
  go

(* Global address assignment happens at VM creation, before any code
   executes — the declaration sequences must match exactly (name, layout
   and initializer) for two programs to share a prefix at all. *)
let globals_eq (p1 : Prog.t) (p2 : Prog.t) =
  let collect p =
    let acc = ref [] in
    Prog.iter_globals p (fun g -> acc := g :: !acc);
    List.rev !acc
  in
  let g1 = collect p1 and g2 = collect p2 in
  List.length g1 = List.length g2
  && List.for_all2
       (fun (a : Prog.global) (b : Prog.global) ->
         String.equal a.Prog.gname b.Prog.gname
         && a.Prog.gty = b.Prog.gty
         && Layout.size_of p1.Prog.tenv a.Prog.gty = Layout.size_of p2.Prog.tenv b.Prog.gty
         && Layout.align_of p1.Prog.tenv a.Prog.gty = Layout.align_of p2.Prog.tenv b.Prog.gty
         && ginit_eq a.Prog.ginit b.Prog.ginit)
       g1 g2

type remap = { rm_regs : int array; rm_blocks : int array }

type func_diff = { fd_limits : int array; fd_remap : remap option }

(* Plain positional equality of two lowered functions — the fast path
   that keeps identical functions out of the diff table without
   allocating any match state. *)
let positional_eq (bf : lfunc) (ff : lfunc) =
  bf.lparams = ff.lparams
  && Array.length bf.lblocks = Array.length ff.lblocks
  &&
  let nb = Array.length bf.lblocks in
  let rec go bi =
    bi >= nb
    ||
    let b1 = bf.lblocks.(bi) and b2 = ff.lblocks.(bi) in
    let n1 = Array.length b1.linsts in
    n1 = Array.length b2.linsts
    && (let rec gi i =
          i >= n1 || (linst_m ident b1.linsts.(i) b2.linsts.(i) && gi (i + 1))
        in
        gi 0)
    && lterm_m ident b1.lterm b2.lterm
    && go (bi + 1)
  in
  go 0

(* Alpha matcher: walk both functions in lockstep from the entry block,
   growing a register and block-id bijection instead of demanding equal
   numbering.  Fault injection inserts code mid-function, so every
   builder-assigned register and check-block index downstream of the
   site shifts; positionally that makes nearly every block of the
   function read as divergent at index 0, even though the code is
   identical up to renaming.  Matched-modulo-bijection positions execute
   identically — same opcodes, same constants, same costs, same memory
   traffic — and the bijection tells {!Vm.resume} how to translate a
   captured baseline frame into the member's numbering.

   Greedy and conservative: block pairs are committed the first time a
   matched terminator connects them, register pairs the first time a
   matched def (or the positional parameter pairing) connects them; any
   later conflict with a committed pair is divergence at that position.
   A committed pair that later proves wrong only produces earlier
   limits, never unsound sharing — the inductive argument is that
   execution enters blocks solely through matched terminators and reads
   only registers written by matched defs (or frame poison, which is
   identical on both sides). *)
let alpha_diff (bf : lfunc) (ff : lfunc) =
  let nb = Array.length bf.lblocks and nfb = Array.length ff.lblocks in
  let lim = Array.make nb max_int in
  let rm_regs = Array.make (max bf.lnregs 1) (-1) in
  let rev_regs = Array.make (max ff.lnregs 1) (-1) in
  let rm_blocks = Array.make (max nb 1) (-1) in
  let rev_blocks = Array.make (max nfb 1) (-1) in
  let remap = { rm_regs; rm_blocks } in
  let entry_diff () =
    if nb > 0 then lim.(0) <- 0;
    { fd_limits = lim; fd_remap = Some remap }
  in
  if Array.length bf.lparams <> Array.length ff.lparams then entry_diff ()
  else begin
    let def r1 r2 =
      r1 >= 0 && r2 >= 0
      && r1 < Array.length rm_regs
      && r2 < Array.length rev_regs
      &&
      if rm_regs.(r1) = -1 && rev_regs.(r2) = -1 then begin
        rm_regs.(r1) <- r2;
        rev_regs.(r2) <- r1;
        true
      end
      else rm_regs.(r1) = r2
    in
    let use r1 r2 = r1 >= 0 && r1 < Array.length rm_regs && rm_regs.(r1) = r2 in
    let params_ok = ref true in
    Array.iteri
      (fun i r -> if not (def r ff.lparams.(i)) then params_ok := false)
      bf.lparams;
    if not !params_ok then entry_diff ()
    else begin
      let q = Queue.create () in
      let blk a b =
        a >= 0 && b >= 0 && a < nb && b < nfb
        &&
        if rm_blocks.(a) = -1 && rev_blocks.(b) = -1 then begin
          rm_blocks.(a) <- b;
          rev_blocks.(b) <- a;
          Queue.add a q;
          true
        end
        else rm_blocks.(a) = b
      in
      let m = { m_use = use; m_def = def; m_blk = blk } in
      if not (blk 0 0) then entry_diff ()
      else begin
        while not (Queue.is_empty q) do
          let a = Queue.pop q in
          let b1 = bf.lblocks.(a) and b2 = ff.lblocks.(rm_blocks.(a)) in
          let n1 = Array.length b1.linsts and n2 = Array.length b2.linsts in
          let stop = min n1 n2 in
          let i = ref 0 in
          while !i < stop && linst_m m b1.linsts.(!i) b2.linsts.(!i) do
            incr i
          done;
          if !i < stop || n1 <> n2 then lim.(a) <- !i
          else if not (lterm_m m b1.lterm b2.lterm) then lim.(a) <- n1
        done;
        let id = ref true in
        Array.iteri (fun i r -> if r <> -1 && r <> i then id := false) rm_regs;
        Array.iteri (fun i b -> if b <> -1 && b <> i then id := false) rm_blocks;
        { fd_limits = lim; fd_remap = (if !id then None else Some remap) }
      end
    end
  end

(** First-divergence limits of [fi] against [base], for the watched
    baseline run: for every function of [base] with any structural
    difference (modulo the alpha bijection), an array over its blocks
    giving the first instruction index at which the programs differ
    ([Array.length linsts] when only the terminator differs; [max_int]
    for identical blocks), plus the register/block remap {!Vm.resume}
    needs to translate captured frames.  Execution of [base] is
    bit-identical (modulo the remap, which is invisible to behaviour) to
    execution of [fi] until it first reaches a limit position, because a
    basic block is only entered at index 0.  [None] when the programs
    cannot share a prefix at all (global layout or the defined-function
    set changed) — the caller must fall back to a from-zero run. *)
let diff_limits (base : prog) (fi : prog) =
  if not (globals_eq base.src fi.src) then None
  else begin
    let diffs = Hashtbl.create 8 in
    let feasible = ref true in
    Hashtbl.iter
      (fun name (bf : lfunc) ->
        match Hashtbl.find_opt fi.funcs name with
        | None -> feasible := false
        | Some ff ->
            if not (positional_eq bf ff) then
              Hashtbl.replace diffs name (alpha_diff bf ff))
      base.funcs;
    if !feasible then Some diffs else None
  end

(** Watch-limit projection of a member diff: the per-function limit
    arrays {!Vm.run_watched} consumes (arrays shared, not copied). *)
let limit_table diffs =
  let t = Hashtbl.create (max 1 (Hashtbl.length diffs)) in
  Hashtbl.iter (fun name fd -> Hashtbl.replace t name fd.fd_limits) diffs;
  t

(** In-place elementwise-minimum merge of [src] into [dst]: the union
    watch set fires at the earliest position any member diverges. *)
let merge_limits dst src =
  Hashtbl.iter
    (fun name lim ->
      match Hashtbl.find_opt dst name with
      | None -> Hashtbl.replace dst name (Array.copy lim)
      | Some cur ->
          Array.iteri (fun i v -> if v < cur.(i) then cur.(i) <- v) lim)
    src
