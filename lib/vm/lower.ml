(** One-time lowering of IR into a pre-resolved, threaded form.

    The tree-walking interpreter re-derived static facts on every dynamic
    instruction: branch targets through a label hashtable, struct layouts
    by recursive walks over the type environment, cast source widths via
    {!Prog.operand_ty}, callees through two hashtable probes, and constant
    operands re-truncated at each evaluation.  All of that is a function
    of the program text, so this pass computes it once per static
    instruction and emits a form the VM dispatch loop can execute with
    array indexing only:

    - blocks become an array indexed by block id; branches carry ids;
    - [Malloc]/[Alloca]/[Gep_*] carry element sizes, alignments and field
      byte offsets from {!Layout};
    - [Int_cast]/[I_to_f] carry the pre-resolved source width;
    - constants are pre-truncated and pre-boxed as runtime values;
    - direct calls bind the lowered callee (or a per-VM extern slot) and
      their base cost once.

    Lowering never fails where the tree-walker would have succeeded: any
    static resolution error (unknown label, bad field index, undefined
    aggregate) is captured and replayed as the {e same} exception only if
    the offending instruction is actually executed, via {!Lpoison} and
    {!Braise} — dead broken code stays dead, as it was for the
    tree-walker. *)

open Dpmr_ir
open Types
open Inst

type value = I of int64 | F of float

(* The [W64] arms apply an identity operation instead of returning [v]
   directly: when every arm of the match is an arithmetic expression the
   compiler keeps the joined [int64] unboxed in callers, whereas a bare
   variable arm forces a heap box per evaluation (measured: one minor
   allocation per executed ALU instruction). *)
let[@inline] truncate_to w v =
  match w with
  | W8 -> Int64.logand v 0xFFL
  | W16 -> Int64.logand v 0xFFFFL
  | W32 -> Int64.logand v 0xFFFFFFFFL
  | W64 -> Int64.logand v (-1L)

let[@inline] sign_extend w v =
  match w with
  | W8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | W16 -> Int64.shift_right (Int64.shift_left v 48) 48
  | W32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | W64 -> Int64.shift_right (Int64.shift_left v 0) 0

(** Lowered operands.  Globals and function addresses stay symbolic:
    global addresses are per-VM, and function addresses are assigned
    lazily {e in first-use order} at run time — pre-assigning them here
    would change the address values a program can print or compare. *)
type lop =
  | Lreg of int
  | Lconst of value  (** pre-truncated, pre-boxed constant *)
  | Lglobal of string
  | Lfun_name of string

(** Scalar shape of a load/store, resolved from the static type.
    Pointers load/store as 8-byte integers. *)
type lkind =
  | Kint of int  (** byte width *)
  | Kfloat
  | Kbad  (** non-scalar: raises at execution, like the tree-walker *)

(** Branch target: a block id, or the exception {!Func.find_block} would
    have raised had the branch executed. *)
type starget = Bidx of int | Braise of exn

type lfunc = {
  lname : string;
  lparams : int array;  (** parameter register indices *)
  lnregs : int;
  mutable lblocks : lblock array;  (** entry block at index 0 *)
}

and lblock = { linsts : linst array; lterm : lterm }

and lterm =
  | Lbr of starget
  | Lcbr of lop * starget * starget
  | Lcheck of lop * starget * starget * bool * bool
      (** a [Lcbr] with at least one detection-block target (a block whose
          first instruction calls [__dpmr_detect]) — i.e. an inline replica
          load-check compiled by the diversity transform.  The booleans say
          which targets are detection blocks.  Executes exactly like
          [Lcbr]; the lowered engine additionally reports a passed
          comparison to an installed trace sink when the branch takes a
          non-detection target. *)
  | Lret of lop option
  | Lunreachable of string  (** pre-formatted error message *)

and lcallee =
  | Lfun of lfunc  (** direct call to a defined function *)
  | Lextern of int * string  (** direct call to an extern: slot, name *)
  | Lindirect of lop

and linst =
  | Lmalloc of int * int * lop  (** reg, element size, count *)
  | Lalloca of int * int * int * lop  (** reg, element size, align, count *)
  | Lfree of lop
  | Lload of int * lkind * lop
  | Lstore of lkind * lop * lop  (** kind, value, pointer *)
  | Lgep_field of int * int * lop  (** reg, byte offset, pointer *)
  | Lgep_index of int * int * lop * lop  (** reg, elem size, pointer, index *)
  | Lmov of int * lop  (** bitcast / ptr_to_int / int_to_ptr: cast-cost copy *)
  | Lbinop of int * binop * width * lop * lop
  | Lfbinop of int * fbinop * lop * lop
  | Licmp of int * icond * width * lop * lop
  | Lfcmp of int * fcond * lop * lop
  | Lint_cast of int * width * bool * width * lop
      (** reg, dest width, signed, source width, value *)
  | Lf_to_i of int * width * lop
  | Li_to_f of int * width * lop  (** reg, source width, value *)
  | Lselect of int * lop * lop * lop
  | Lcall of int option * lcallee * lop array * int  (** pre-computed cost *)
  | Lpoison of exn  (** static resolution failed; re-raise when executed *)

type prog = {
  funcs : (string, lfunc) Hashtbl.t;
  slot_of_name : (string, int) Hashtbl.t;
      (** extern slot per direct-callee name; the VM resolves each slot to
          a closure once per instance *)
  mutable n_slots : int;
  src : Prog.t;  (** the program this was lowered from *)
}

let lower_operand = function
  | Reg r -> Lreg r
  | Cint (w, v) -> Lconst (I (truncate_to w v))
  | Cfloat x -> Lconst (F x)
  | Null _ -> Lconst (I 0L)
  | Global g -> Lglobal g
  | Fun_addr f -> Lfun_name f

let kind_of = function
  | Float -> Kfloat
  | Int w -> Kint (bytes_of_width w)
  | Ptr _ -> Kint 8
  | _ -> Kbad

(* Source width of an integer cast: values are kept zero-extended to
   their own width, so sign extension needs the operand's static type. *)
let src_width p f v =
  match Prog.operand_ty p f v with Int w -> w | _ -> W64

let slot_for lp name =
  match Hashtbl.find_opt lp.slot_of_name name with
  | Some i -> i
  | None ->
      let i = lp.n_slots in
      lp.n_slots <- i + 1;
      Hashtbl.replace lp.slot_of_name name i;
      i

let lower_inst lp (p : Prog.t) (f : Func.t) (inst : Inst.inst) : linst =
  let tenv = p.Prog.tenv in
  try
    match inst with
    | Malloc (r, ty, n) -> Lmalloc (r, Layout.size_of tenv ty, lower_operand n)
    | Alloca (r, ty, n) ->
        Lalloca
          ( r,
            Layout.size_of tenv ty,
            max 8 (Layout.align_of tenv ty),
            lower_operand n )
    | Free o -> Lfree (lower_operand o)
    | Load (r, ty, o) -> Lload (r, kind_of ty, lower_operand o)
    | Store (ty, v, o) -> Lstore (kind_of ty, lower_operand v, lower_operand o)
    | Gep_field (r, sname, o, i) ->
        Lgep_field (r, Layout.field_offset tenv sname i, lower_operand o)
    | Gep_index (r, ety, o, i) ->
        Lgep_index (r, Layout.size_of tenv ety, lower_operand o, lower_operand i)
    | Bitcast (r, _, o) | Ptr_to_int (r, o) | Int_to_ptr (r, _, o) ->
        Lmov (r, lower_operand o)
    | Binop (r, op, w, a, b) -> Lbinop (r, op, w, lower_operand a, lower_operand b)
    | Fbinop (r, op, a, b) -> Lfbinop (r, op, lower_operand a, lower_operand b)
    | Icmp (r, c, w, a, b) -> Licmp (r, c, w, lower_operand a, lower_operand b)
    | Fcmp (r, c, a, b) -> Lfcmp (r, c, lower_operand a, lower_operand b)
    | Int_cast (r, w, signed, v) ->
        Lint_cast (r, w, signed, src_width p f v, lower_operand v)
    | F_to_i (r, w, v) -> Lf_to_i (r, w, lower_operand v)
    | I_to_f (r, _, v) -> Li_to_f (r, src_width p f v, lower_operand v)
    | Select (r, _, c, a, b) ->
        Lselect (r, lower_operand c, lower_operand a, lower_operand b)
    | Call (r, callee, args) ->
        let lc =
          match callee with
          | Direct n -> (
              match Hashtbl.find_opt lp.funcs n with
              | Some lf -> Lfun lf
              | None -> Lextern (slot_for lp n, n))
          | Indirect o -> Lindirect (lower_operand o)
        in
        Lcall
          ( r,
            lc,
            Array.of_list (List.map lower_operand args),
            Cost.call_base + (Cost.call_per_arg * List.length args) )
  with (Invalid_argument _ | Failure _ | Not_found) as e -> Lpoison e

let lower_target (f : Func.t) label =
  match try Some (Func.block_index f label) with Invalid_argument _ -> None with
  | Some i -> Bidx i
  | None ->
      (* replay find_block's lazy failure, message included *)
      Braise
        (Invalid_argument
           (Printf.sprintf "Func.find_block: %s has no block %S" f.Func.name
              label))

let lower_term (f : Func.t) : Inst.term -> lterm = function
  | Br l -> Lbr (lower_target f l)
  | Cbr (c, l1, l2) -> Lcbr (lower_operand c, lower_target f l1, lower_target f l2)
  | Ret o -> Lret (Option.map lower_operand o)
  | Unreachable -> Lunreachable (f.Func.name ^ ": executed unreachable")

let shell (f : Func.t) =
  {
    lname = f.Func.name;
    lparams = Array.of_list (List.map fst f.Func.params);
    lnregs = f.Func.next_reg;
    lblocks = [||];
  }

(* Rewrite [Lcbr]s whose target is a detection block (first instruction
   calls [__dpmr_detect]) into [Lcheck], so the VM can recognize inline
   replica load-checks without any per-branch lookup at run time. *)
let mark_checks lf =
  let starts_detect (b : lblock) =
    Array.length b.linsts > 0
    &&
    match b.linsts.(0) with
    | Lcall (_, Lextern (_, "__dpmr_detect"), _, _) -> true
    | _ -> false
  in
  let det = Array.map starts_detect lf.lblocks in
  if Array.exists Fun.id det then begin
    let is_det = function Bidx i -> det.(i) | Braise _ -> false in
    lf.lblocks <-
      Array.map
        (fun b ->
          match b.lterm with
          | Lcbr (c, t1, t2) when is_det t1 || is_det t2 ->
              { b with lterm = Lcheck (c, t1, t2, is_det t1, is_det t2) }
          | _ -> b)
        lf.lblocks
  end

let fill_body lp p (f : Func.t) lf =
  lf.lblocks <-
    Array.map
      (fun (b : Func.block) ->
        {
          linsts = Array.of_list (List.map (lower_inst lp p f) b.Func.insts);
          lterm = lower_term f b.Func.term;
        })
      (Func.block_array f);
  mark_checks lf

(* Two phases so mutually recursive call knots resolve: every function
   gets a shell first, then bodies are filled in place — [Lfun] callees
   hold the shell whose blocks appear in phase two. *)
let lower_prog (p : Prog.t) : prog =
  let lp =
    {
      funcs = Hashtbl.create 64;
      slot_of_name = Hashtbl.create 16;
      n_slots = 0;
      src = p;
    }
  in
  Prog.iter_funcs p (fun f -> Hashtbl.replace lp.funcs f.Func.name (shell f));
  Prog.iter_funcs p (fun f ->
      fill_body lp p f (Hashtbl.find lp.funcs f.Func.name));
  lp
