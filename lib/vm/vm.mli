(** The interpreter: executes an IR program against the simulated memory
    subsystem, charging the {!Cost} model, dispatching external
    functions, and classifying the run per {!Outcome}. *)

open Dpmr_ir
open Dpmr_memsim

type value = I of int64 | F of float
(** Runtime values: integers and pointers share [I]. *)

exception Exit_program of int

(** Raised by the [__dpmr_detect] intrinsic and the wrapper checks. *)
exception Dpmr_detected of string

exception Timeout_exceeded
exception Vm_error of string

type t = {
  prog : Prog.t;
  mem : Mem.t;
  alloc : Allocator.t;
  mutable sp : int64;
  global_addr : (string, int64) Hashtbl.t;
  fun_addr : (string, int64) Hashtbl.t;
  addr_fun : (int64, string) Hashtbl.t;
  mutable next_fun_addr : int64;
  out : Buffer.t;
  mutable cost : int64;
  mutable budget : int64;
  rng : Rng.t;
  externs : (string, extern) Hashtbl.t;
  mutable fi_first_cost : int64 option;
  mutable call_depth : int;
}

and extern = t -> value list -> value option
(** External functions receive the VM and the evaluated arguments. *)

val create : ?seed:int64 -> ?budget:int64 -> Prog.t -> t
val register_extern : t -> string -> extern -> unit

val add_cost : t -> int -> unit
val as_int : value -> int64
val as_float : value -> float
val truncate_to : Types.width -> int64 -> int64
val sign_extend : Types.width -> int64 -> int64

(** Address of a function (assigning one on first use). *)
val fun_address : t -> string -> int64

val global_address : t -> string -> int64

(** Call a defined function or a registered extern by name. *)
val call_function : t -> string -> value list -> value option

(** Run the entry point to completion and classify the result.  [main]
    may take [()] or [(argc, argv)]; in the latter case [args] is
    materialized as C strings in simulated memory. *)
val run : ?entry:string -> ?args:string list -> t -> Outcome.run
