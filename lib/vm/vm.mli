(** The interpreter: executes an IR program against the simulated memory
    subsystem, charging the {!Cost} model, dispatching external
    functions, and classifying the run per {!Outcome}.

    Two engines share all VM state and agree bit-for-bit: the default
    {b lowered} engine ({!run}) executes the pre-resolved threaded form
    produced by {!Lower}, and the {b reference} tree-walking engine
    ({!run_reference}) is kept as the executable specification the
    differential tests compare against. *)

open Dpmr_ir
open Dpmr_memsim

type value = Lower.value = I of int64 | F of float
(** Runtime values: integers and pointers share [I]. *)

exception Exit_program of int

(** Raised by the [__dpmr_detect] intrinsic and the wrapper checks. *)
exception Dpmr_detected of string

exception Timeout_exceeded
exception Vm_error of string

(** Raised out of {!run} by a cooperative-cancellation hook (see
    {!set_poll_hook}); never caught by the run classifier, so it reaches
    the supervisor that installed the hook. *)
exception Cancelled of string

type t = {
  prog : Prog.t;
  lprog : Lower.prog;  (** pre-resolved form executed by {!run} *)
  mutable mem : Mem.t;  (** mutable only for {!resume}: forks swap in a thawed space *)
  mutable alloc : Allocator.t;
  mutable sp : int64;
  global_addr : (string, int64) Hashtbl.t;
  fun_addr : (string, int64) Hashtbl.t;
  addr_fun : (int64, string) Hashtbl.t;
  mutable next_fun_addr : int64;
  out : Buffer.t;
  cost : int ref;
      (** a [ref] rather than a mutable field so the compiled tier can
          capture it once per entry and charge without touching [t] *)
  mutable budget : int;
  rng : Rng.t;
  externs : (string, extern) Hashtbl.t;
  extern_slots : extern option array;
      (** per-VM resolution of the {!Lower.Lextern} call slots *)
  mutable fi_first_cost : int option;
  mutable call_depth : int;
  mutable use_lowered : bool;  (** engine selector for {!call_function} *)
  trace : Dpmr_trace.Trace.t option;
      (** the domain's trace sink ({!Dpmr_trace.Trace.current}), captured
          once at {!create}; [None] — the common case — costs one pointer
          test per would-be event *)
}

and extern = t -> value list -> value option
(** External functions receive the VM and the evaluated arguments. *)

(** Create a VM.  [lowered], when supplied, must be the result of
    [Lower.lower_prog prog] for this very program — it lets callers that
    run the same program many times lower it once; a mismatched or absent
    [lowered] triggers a fresh lowering. *)
val create : ?seed:int64 -> ?budget:int64 -> ?lowered:Lower.prog -> Prog.t -> t

(** Install (or clear, with [None]) this domain's step-poll hook.  Both
    dispatch loops call it once per basic block, at the budget check; the
    hook cancels the run by raising {!Cancelled}.  Domain-local: a hook
    installed by a worker never affects VMs on other domains. *)
val set_poll_hook : (unit -> unit) option -> unit

val register_extern : t -> string -> extern -> unit

val add_cost : t -> int -> unit
val as_int : value -> int64
val as_float : value -> float
val truncate_to : Types.width -> int64 -> int64
val sign_extend : Types.width -> int64 -> int64

(** Address of a function (assigning one on first use). *)
val fun_address : t -> string -> int64

val global_address : t -> string -> int64

(** Call a defined function or a registered extern by name, on whichever
    engine the current run selected. *)
val call_function : t -> string -> value list -> value option

(** Run the entry point to completion and classify the result.  [main]
    may take [()] or [(argc, argv)]; in the latter case [args] is
    materialized as C strings in simulated memory.  Executes the lowered
    threaded form. *)
val run : ?entry:string -> ?args:string list -> t -> Outcome.run

(** Same protocol on the reference tree-walking engine (the original
    interpreter, kept as the executable specification). *)
val run_reference : ?entry:string -> ?args:string list -> t -> Outcome.run

(** {1 Tiered execution}

    Three tiers, all charging the {!Cost} model identically and agreeing
    byte-for-byte on every outcome: the reference tree-walker, the
    lowered threaded interpreter, and a closure-compiled top tier
    ({!Compile}) that hot functions are promoted into after
    {!Cost.tier_promote_blocks} executed lowered blocks.  Promotion is
    refused while full per-event fidelity is required (trace sink
    installed, fault injection activated), and compiled code
    deoptimizes back into the lowered engine — same frame, at a block
    boundary — when fidelity demands appear mid-run. *)

type tier_mode =
  | Tier_auto  (** telemetry-driven promotion (the default) *)
  | Tier_ref  (** force the reference tree-walker in {!run} *)
  | Tier_lowered  (** disable promotion: lowered engine only *)
  | Tier_compiled  (** promote at first entry (threshold 0) *)

(** Set the process-global tier policy.  Also settable through the
    [DPMR_TIER] environment variable ([auto]/[ref]/[lowered]/[compiled]),
    read once at module initialization. *)
val set_tier_mode : tier_mode -> unit

val tier_mode : unit -> tier_mode
val tier_mode_of_string : string -> tier_mode option

(** Cumulative (process-wide) compiled-tier telemetry:
    (functions promoted, deoptimizations). *)
val tier_stats : unit -> int * int

(** {1 Copy-on-write snapshots (snapshot/fork campaign execution)}

    A watched baseline run executes bit-identically to {!run} until it
    first reaches a divergence position computed by
    {!Lower.diff_limits}, captures the whole VM state copy-on-write
    ({!Mem.freeze} / {!Allocator.freeze}, frame and table copies), and
    unwinds.  Forks {!resume} from the capture on their own (injected)
    program; the result is bit-identical to running the fork from
    zero. *)

type snapshot

(** Watching is impossible on this VM altogether (tracing active).
    Callers fall back to from-zero runs. *)
exception Watch_infeasible

(** Per-member resolution of a watched baseline run. *)
type watch_result =
  | Wsnap of snapshot
      (** state captured copy-on-write at the member's divergence
          frontier; {!resume} a fork from it *)
  | Wshared of Outcome.run
      (** the baseline ended (normally, by trap, or on budget) without
          reaching this member's frontier — the member's whole run is
          bit-identical to the baseline's, so this outcome {e is} the
          member's outcome *)
  | Wzero
      (** the frontier was reached where a fork cannot resume (inside an
          extern callback): run this member from zero *)

(** Run the entry point watched for a whole group: bit-identical to
    {!run}, except that on the first arrival at each member's divergence
    frontier (its {!Lower.diff_limits} table) the VM state is captured
    copy-on-write for that member; the run ends early once every member
    is resolved. *)
val run_watched :
  ?entry:string ->
  ?args:string list ->
  t ->
  (string, int array) Hashtbl.t array ->
  watch_result array

(** Replace this (freshly created, extern-registered) VM's state with the
    snapshot's and run to completion.  [remap] gives, per function, the
    {!Lower.remap} translating the captured baseline frames into this
    program's register/block numbering ([None] = identity — the default
    for every function). *)
val resume :
  ?remap:(string -> Lower.remap option) -> t -> snapshot -> Outcome.run

(** Deterministic content hash of the captured state (a cache-key
    component: equal hashes imply forks resume from equal states). *)
val snapshot_hash : snapshot -> int64

(** Simulated cost already spent at the capture point. *)
val snapshot_cost : snapshot -> int64

val snapshot_pages : snapshot -> int
