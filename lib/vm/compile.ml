(** Closure-compiled top tier for hot lowered functions.

    The lowered engine ({!Vm}) already executes pre-resolved arrays, but
    every instruction still pays a dispatch: fetch, a 20-way match, and
    re-interpretation of operand shapes that were fixed at lowering time.
    This module removes that residue by compiling each {!Lower.lfunc}
    once — when its telemetry says it is hot — into a tree of pre-bound
    OCaml closures: one closure per basic block, with straight-line runs
    of instructions fused into superinstruction chains and the operand
    shapes ([Lreg]/[Lconst]) burned into each closure's body.

    Fidelity contract: the compiled tier charges the {!Cost} model at the
    same program points, evaluates operands in the same order, raises the
    same exceptions from the same states and writes the same register
    bits as the lowered engine — byte-identical outcomes, enforced by the
    three-tier differential suite.  Two deliberate structural deviations,
    both invisible to behaviour:

    - trace emission is absent: {!Vm} only promotes when no sink is
      installed (and a sink cannot appear mid-run — it is captured at
      [Vm.create]), so the omitted events could never have fired;
    - the step-poll hook is captured once per tier entry instead of read
      per block — the hook is installed by a supervisor before the run
      and cannot change underneath a running domain.

    Deoptimization: the compiled code operates directly on the lowered
    tier's {!Machine.lframe}, so bailing out needs no state
    materialization at all — a block that observed a full-fidelity event
    (today: a callee activating fault injection) simply returns the next
    block index as {!Rdeopt} and the lowered engine continues from that
    block boundary with the very same frame.

    Boxing discipline (the whole point of the exercise): a closure that
    {e returns} an [int64] or [float], or passes one to another closure,
    boxes it — so every hot instruction is compiled to a {e single}
    closure whose body reads operands inline through {!Machine}'s
    [\[@inline\]] register primitives and feeds them straight into the
    consuming primitive.  Generic [cstate -> int64] evaluator closures
    exist only as the fallback for cold operand shapes
    ([Lglobal]/[Lfun_name], whose per-VM address lookup allocates
    anyway). *)

open Dpmr_ir
open Dpmr_memsim
module L = Lower

(* What a tier entry returns to [Vm.exec_lblocks_at]. *)
type result =
  | Rret of Lower.value option  (** the function returned *)
  | Rdeopt of int
      (** fidelity demanded mid-run: resume the lowered engine at this
          block index, on the same frame *)

(* Process-wide tier telemetry.  Atomics, not per-VM fields: promotion
   mutates shared [lfunc] state under the lowering table's publication
   discipline, and report jobs run one VM per domain — a pair of global
   counters is race-free to read and keeps [cstate] free of accounting. *)
let promotions = Atomic.make 0
let deopts = Atomic.make 0
let n_promotions () = Atomic.get promotions
let n_deopts () = Atomic.get deopts

(** Everything the compiled code needs from the VM.  A functor parameter
    rather than a direct [Vm] dependency because [Vm] sits {e above}
    this module: it instantiates {!Make} after its recursive execution
    knot and ties the result into [Vm.tier_enter]. *)
module type RUNTIME = sig
  type t

  val cost : t -> int ref
  val budget : t -> int
  val mem : t -> Mem.t
  val alloc : t -> Allocator.t
  val sp : t -> int64
  val set_sp : t -> int64 -> unit
  val global_address : t -> string -> int64
  val fun_address : t -> string -> int64

  val fault_active : t -> bool
  (** has fault injection activated ([Vm.fi_first_cost] set)?  Polled
      around calls: activation is a deoptimization trigger. *)

  val call_lfun : t -> L.lfunc -> L.value array -> L.value option
  (** call a lowered function (the callee runs on whatever tier its own
      telemetry selects) *)

  val call_extern_slot : t -> int -> string -> L.value array -> L.value option
  (** direct extern call through the per-VM slot cache, with the lowered
      engine's resolution order (slot, extern table, unknown) *)

  val indirect_name : t -> int64 -> string
  (** reverse function-address lookup; faults on unmapped addresses
      {e before} argument evaluation, like the lowered engine *)

  val call_named : t -> string -> L.value array -> L.value option
  (** indirect-call completion: defined function, extern, or unknown *)
end

module Make (R : RUNTIME) = struct
  (* Per-entry execution state: one record allocated per tier entry,
     threading everything hot through a single immediate argument.
     [mem]/[alloc]/[budget] are stable for the duration of a run (only
     [Vm.resume] swaps spaces, never mid-run), so they are hoisted out
     of the VM record once here. *)
  type cstate = {
    rt : R.t;
    cost : int ref;  (* the VM's own counter, captured once *)
    budget : int;
    poll : (unit -> unit) option;
    mem : Mem.t;
    alloc : Allocator.t;
    fr : Machine.lframe;
    mutable cret : L.value option;  (* return value, set by [Lret] steps *)
    mutable deopt : bool;  (* a call step observed fault activation *)
  }

  type step = cstate -> unit

  (* ---- generic operand evaluators (cold-shape fallback) ------------ *)

  (* Same semantics as [Vm.leval_int]/[leval_float]/[leval], including
     the error texts and the [Lfun_name] address-assignment side effect
     preceding a type mismatch. *)

  let op_int (o : L.lop) : cstate -> int64 =
    match o with
    | L.Lreg r -> fun st -> Machine.reg_int st.fr r
    | L.Lconst (L.I x) -> fun _ -> x
    | L.Lconst (L.F _) ->
        fun _ -> raise (Machine.Vm_error "expected int/pointer value")
    | L.Lglobal g -> fun st -> R.global_address st.rt g
    | L.Lfun_name f -> fun st -> R.fun_address st.rt f

  let op_float (o : L.lop) : cstate -> float =
    match o with
    | L.Lreg r -> fun st -> Machine.reg_float st.fr r
    | L.Lconst (L.F x) -> fun _ -> x
    | L.Lconst (L.I _) -> fun _ -> raise (Machine.Vm_error "expected float value")
    | L.Lglobal g ->
        fun st ->
          ignore (R.global_address st.rt g);
          raise (Machine.Vm_error "expected float value")
    | L.Lfun_name f ->
        fun st ->
          ignore (R.fun_address st.rt f);
          raise (Machine.Vm_error "expected float value")

  let op_val (o : L.lop) : cstate -> L.value =
    match o with
    | L.Lreg r ->
        fun st ->
          let fr = st.fr in
          if Bytes.unsafe_get fr.Machine.tags r = '\000' then
            L.I (Machine.reg_get fr.Machine.bits (r lsl 3))
          else L.F (Int64.float_of_bits (Machine.reg_get fr.Machine.bits (r lsl 3)))
    | L.Lconst v -> fun _ -> v
    | L.Lglobal g -> fun st -> L.I (R.global_address st.rt g)
    | L.Lfun_name f -> fun st -> L.I (R.fun_address st.rt f)

  (* [Vm.copy_op]: register sources move bits+tag; everything else goes
     through boxed evaluation. *)
  let cop_copy (r : int) (o : L.lop) : step =
    match o with
    | L.Lreg s ->
        fun st ->
          let fr = st.fr in
          Bytes.unsafe_set fr.Machine.tags r (Bytes.unsafe_get fr.Machine.tags s);
          Machine.reg_set fr.Machine.bits (r lsl 3)
            (Machine.reg_get fr.Machine.bits (s lsl 3))
    | L.Lconst v -> fun st -> Machine.set_value st.fr r v
    | L.Lglobal g -> fun st -> Machine.set_int st.fr r (R.global_address st.rt g)
    | L.Lfun_name f -> fun st -> Machine.set_int st.fr r (R.fun_address st.rt f)

  (* The write half of a store whose address is already known — the
     cold-shape fallback shared by [Lstore]/[Lstore_idx]/[Lstore_fld].
     Hot shapes are specialized in [cinst] to keep the address unboxed. *)
  let gwrite k (v : L.lop) : cstate -> int64 -> unit =
    match k with
    | L.Kint n -> (
        match v with
        | L.Lreg s ->
            fun st addr ->
              let fr = st.fr in
              if Bytes.unsafe_get fr.Machine.tags s <> '\000' then
                raise (Machine.Vm_error "store: float value into int slot");
              Mem.write_int st.mem addr n
                (Machine.reg_get fr.Machine.bits (s lsl 3))
        | L.Lconst (L.I y) -> fun st addr -> Mem.write_int st.mem addr n y
        | L.Lconst (L.F _) ->
            fun _ _ ->
              raise (Machine.Vm_error "store: float value into int slot")
        | L.Lglobal g ->
            fun st addr -> Mem.write_int st.mem addr n (R.global_address st.rt g)
        | L.Lfun_name f ->
            fun st addr -> Mem.write_int st.mem addr n (R.fun_address st.rt f))
    | L.Kfloat ->
        (* a float slot takes any value's bits verbatim, as in
           [Vm.exec_store_at] *)
        let bits : cstate -> int64 =
          match v with
          | L.Lreg s -> fun st -> Machine.reg_get st.fr.Machine.bits (s lsl 3)
          | L.Lconst (L.I y) -> fun _ -> y
          | L.Lconst (L.F x) ->
              let b = Int64.bits_of_float x in
              fun _ -> b
          | L.Lglobal g -> fun st -> R.global_address st.rt g
          | L.Lfun_name f -> fun st -> R.fun_address st.rt f
        in
        fun st addr -> Mem.write_int st.mem addr 8 (bits st)
    | L.Kbad ->
        let ev = op_val v in
        fun st _ ->
          ignore (ev st);
          raise (Machine.Vm_error "store of non-scalar")

  let finish st r name (res : L.value option) =
    match (r, res) with
    | Some r, Some v -> Machine.set_value st.fr r v
    | Some _, None ->
        raise
          (Machine.Vm_error
             (Printf.sprintf "%s returned void, result expected" name))
    | None, _ -> ()

  (* ---- per-instruction compilation --------------------------------- *)

  (* Each arm mirrors the corresponding [Vm.exec_linst] arm: same charge
     points, same right-to-left operand order for binary ops, same
     base-then-index order for fused accesses.  The first arms of each
     group are the hot operand shapes, compiled to a single closure with
     all reads inline; the last is the generic cold fallback. *)
  let cinst (inst : L.linst) : step =
    match inst with
    | L.Lmalloc (r, esz, n) ->
        let en = op_int n in
        fun st ->
          let count = Int64.to_int (en st) in
          if count < 0 then raise (Machine.Vm_error "malloc: negative count");
          let bytes = count * esz in
          st.cost := !(st.cost) + Cost.malloc_cost bytes;
          Machine.set_int st.fr r (Allocator.malloc st.alloc bytes)
    | L.Lalloca (r, esz, algn, n) ->
        let en = op_int n in
        fun st ->
          let count = Int64.to_int (en st) in
          let bytes = max 1 (count * esz) in
          st.cost := !(st.cost) + Cost.alloca_cost bytes;
          let addr =
            Int64.of_int (Layout.round_up (Int64.to_int (R.sp st.rt)) algn)
          in
          Mem.map_range st.mem addr bytes Mem.Fill_garbage;
          R.set_sp st.rt (Int64.add addr (Int64.of_int bytes));
          Machine.set_int st.fr r addr
    | L.Lfree p ->
        let ep = op_int p in
        fun st ->
          st.cost := !(st.cost) + Cost.free_cost;
          let addr = ep st in
          if not (Int64.equal addr 0L) then Allocator.free st.alloc addr
    (* loads *)
    | L.Lload (r, L.Kint n, L.Lreg p) ->
        fun st ->
          st.cost :=
            !(st.cost) + Cost.load
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          let fr = st.fr in
          Machine.set_int fr r (Mem.read_int st.mem (Machine.reg_int fr p) n)
    | L.Lload (r, L.Kfloat, L.Lreg p) ->
        fun st ->
          st.cost :=
            !(st.cost) + Cost.load
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          let fr = st.fr in
          let addr = Machine.reg_int fr p in
          Bytes.unsafe_set fr.Machine.tags r '\001';
          Machine.reg_set fr.Machine.bits (r lsl 3) (Mem.read_int st.mem addr 8)
    | L.Lload (r, k, p) -> (
        let ep = op_int p in
        match k with
        | L.Kint n ->
            fun st ->
              st.cost :=
                !(st.cost) + Cost.load
                + Cost.heap_pressure (Allocator.live_bytes st.alloc);
              Machine.set_int st.fr r (Mem.read_int st.mem (ep st) n)
        | L.Kfloat ->
            fun st ->
              st.cost :=
                !(st.cost) + Cost.load
                + Cost.heap_pressure (Allocator.live_bytes st.alloc);
              let addr = ep st in
              let fr = st.fr in
              Bytes.unsafe_set fr.Machine.tags r '\001';
              Machine.reg_set fr.Machine.bits (r lsl 3)
                (Mem.read_int st.mem addr 8)
        | L.Kbad ->
            fun st ->
              st.cost :=
                !(st.cost) + Cost.load
                + Cost.heap_pressure (Allocator.live_bytes st.alloc);
              ignore (ep st);
              raise (Machine.Vm_error "load of non-scalar"))
    (* stores *)
    | L.Lstore (L.Kint n, L.Lreg s, L.Lreg p) ->
        fun st ->
          st.cost :=
            !(st.cost) + Cost.store
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          let fr = st.fr in
          let addr = Machine.reg_int fr p in
          if Bytes.unsafe_get fr.Machine.tags s <> '\000' then
            raise (Machine.Vm_error "store: float value into int slot");
          Mem.write_int st.mem addr n (Machine.reg_get fr.Machine.bits (s lsl 3))
    | L.Lstore (L.Kint n, L.Lconst (L.I y), L.Lreg p) ->
        fun st ->
          st.cost :=
            !(st.cost) + Cost.store
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          Mem.write_int st.mem (Machine.reg_int st.fr p) n y
    | L.Lstore (L.Kfloat, L.Lreg s, L.Lreg p) ->
        fun st ->
          st.cost :=
            !(st.cost) + Cost.store
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          let fr = st.fr in
          let addr = Machine.reg_int fr p in
          Mem.write_int st.mem addr 8 (Machine.reg_get fr.Machine.bits (s lsl 3))
    | L.Lstore (k, v, p) ->
        let ep = op_int p in
        let wr = gwrite k v in
        fun st ->
          st.cost :=
            !(st.cost) + Cost.store
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          wr st (ep st)
    (* address computation *)
    | L.Lgep_field (r, off, L.Lreg p) ->
        let o64 = Int64.of_int off in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          Machine.set_int fr r (Int64.add (Machine.reg_int fr p) o64)
    | L.Lgep_field (r, off, p) ->
        let ep = op_int p in
        let o64 = Int64.of_int off in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          Machine.set_int st.fr r (Int64.add (ep st) o64)
    | L.Lgep_index (r, esz, L.Lreg p, L.Lreg i) ->
        let e64 = Int64.of_int esz in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          let base = Machine.reg_int fr p in
          let idx = Machine.reg_int fr i in
          Machine.set_int fr r (Int64.add base (Int64.mul idx e64))
    | L.Lgep_index (r, esz, L.Lreg p, L.Lconst (L.I idx)) ->
        let off = Int64.mul idx (Int64.of_int esz) in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          Machine.set_int fr r (Int64.add (Machine.reg_int fr p) off)
    | L.Lgep_index (r, esz, p, i) ->
        let ep = op_int p and ei = op_int i in
        let e64 = Int64.of_int esz in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let base = ep st in
          let idx = ei st in
          Machine.set_int st.fr r (Int64.add base (Int64.mul idx e64))
    | L.Lmov (r, L.Lreg s) ->
        fun st ->
          st.cost := !(st.cost) + Cost.cast;
          let fr = st.fr in
          Bytes.unsafe_set fr.Machine.tags r (Bytes.unsafe_get fr.Machine.tags s);
          Machine.reg_set fr.Machine.bits (r lsl 3)
            (Machine.reg_get fr.Machine.bits (s lsl 3))
    | L.Lmov (r, p) ->
        let cp = cop_copy r p in
        fun st ->
          st.cost := !(st.cost) + Cost.cast;
          cp st
    (* integer ALU: right-to-left operand order, like the lowered engine *)
    | L.Lbinop (r, op, w, L.Lreg ra, L.Lreg rb) ->
        fun st ->
          st.cost := !(st.cost) + Cost.alu;
          let fr = st.fr in
          let vb = Machine.reg_int fr rb in
          let va = Machine.reg_int fr ra in
          Machine.set_int fr r (Machine.exec_binop op w va vb)
    | L.Lbinop (r, op, w, L.Lreg ra, L.Lconst (L.I kb)) ->
        fun st ->
          st.cost := !(st.cost) + Cost.alu;
          let fr = st.fr in
          let va = Machine.reg_int fr ra in
          Machine.set_int fr r (Machine.exec_binop op w va kb)
    | L.Lbinop (r, op, w, L.Lconst (L.I ka), L.Lreg rb) ->
        fun st ->
          st.cost := !(st.cost) + Cost.alu;
          let fr = st.fr in
          let vb = Machine.reg_int fr rb in
          Machine.set_int fr r (Machine.exec_binop op w ka vb)
    | L.Lbinop (r, op, w, a, b) ->
        let eb = op_int b and ea = op_int a in
        fun st ->
          st.cost := !(st.cost) + Cost.alu;
          let vb = eb st in
          let va = ea st in
          Machine.set_int st.fr r (Machine.exec_binop op w va vb)
    | L.Lfbinop (r, op, L.Lreg ra, L.Lreg rb) ->
        fun st ->
          st.cost := !(st.cost) + Cost.falu;
          let fr = st.fr in
          let y = Machine.reg_float fr rb in
          let x = Machine.reg_float fr ra in
          let v =
            match op with
            | Inst.Fadd -> x +. y
            | Inst.Fsub -> x -. y
            | Inst.Fmul -> x *. y
            | Inst.Fdiv -> x /. y
          in
          Machine.set_float fr r v
    | L.Lfbinop (r, op, L.Lreg ra, L.Lconst (L.F y)) ->
        fun st ->
          st.cost := !(st.cost) + Cost.falu;
          let fr = st.fr in
          let x = Machine.reg_float fr ra in
          let v =
            match op with
            | Inst.Fadd -> x +. y
            | Inst.Fsub -> x -. y
            | Inst.Fmul -> x *. y
            | Inst.Fdiv -> x /. y
          in
          Machine.set_float fr r v
    | L.Lfbinop (r, op, a, b) ->
        let eb = op_float b and ea = op_float a in
        fun st ->
          st.cost := !(st.cost) + Cost.falu;
          let y = eb st in
          let x = ea st in
          let v =
            match op with
            | Inst.Fadd -> x +. y
            | Inst.Fsub -> x -. y
            | Inst.Fmul -> x *. y
            | Inst.Fdiv -> x /. y
          in
          Machine.set_float st.fr r v
    | L.Licmp (r, c, w, L.Lreg ra, L.Lreg rb) ->
        fun st ->
          st.cost := !(st.cost) + Cost.cmp;
          let fr = st.fr in
          let vb = Machine.reg_int fr rb in
          let va = Machine.reg_int fr ra in
          Machine.set_int fr r (Machine.exec_icmp c w va vb)
    | L.Licmp (r, c, w, L.Lreg ra, L.Lconst (L.I kb)) ->
        fun st ->
          st.cost := !(st.cost) + Cost.cmp;
          let fr = st.fr in
          let va = Machine.reg_int fr ra in
          Machine.set_int fr r (Machine.exec_icmp c w va kb)
    | L.Licmp (r, c, w, L.Lconst (L.I ka), L.Lreg rb) ->
        fun st ->
          st.cost := !(st.cost) + Cost.cmp;
          let fr = st.fr in
          let vb = Machine.reg_int fr rb in
          Machine.set_int fr r (Machine.exec_icmp c w ka vb)
    | L.Licmp (r, c, w, a, b) ->
        let eb = op_int b and ea = op_int a in
        fun st ->
          st.cost := !(st.cost) + Cost.cmp;
          let vb = eb st in
          let va = ea st in
          Machine.set_int st.fr r (Machine.exec_icmp c w va vb)
    | L.Lfcmp (r, c, L.Lreg ra, L.Lreg rb) ->
        fun st ->
          st.cost := !(st.cost) + Cost.cmp;
          let fr = st.fr in
          let vb = Machine.reg_float fr rb in
          let va = Machine.reg_float fr ra in
          Machine.set_int fr r (Machine.exec_fcmp c va vb)
    | L.Lfcmp (r, c, a, b) ->
        let eb = op_float b and ea = op_float a in
        fun st ->
          st.cost := !(st.cost) + Cost.cmp;
          let vb = eb st in
          let va = ea st in
          Machine.set_int st.fr r (Machine.exec_fcmp c va vb)
    (* casts *)
    | L.Lint_cast (r, w, signed, src_w, L.Lreg s) ->
        if signed then fun st ->
          st.cost := !(st.cost) + Cost.cast;
          let fr = st.fr in
          Machine.set_int fr r
            (Lower.truncate_to w (Lower.sign_extend src_w (Machine.reg_int fr s)))
        else fun st ->
          st.cost := !(st.cost) + Cost.cast;
          let fr = st.fr in
          Machine.set_int fr r (Lower.truncate_to w (Machine.reg_int fr s))
    | L.Lint_cast (r, w, signed, src_w, v) ->
        let ev = op_int v in
        fun st ->
          st.cost := !(st.cost) + Cost.cast;
          let x = ev st in
          let x = if signed then Lower.sign_extend src_w x else x in
          Machine.set_int st.fr r (Lower.truncate_to w x)
    | L.Lf_to_i (r, w, L.Lreg s) ->
        fun st ->
          st.cost := !(st.cost) + Cost.cast;
          let fr = st.fr in
          Machine.set_int fr r
            (Lower.truncate_to w (Int64.of_float (Machine.reg_float fr s)))
    | L.Lf_to_i (r, w, v) ->
        let ev = op_float v in
        fun st ->
          st.cost := !(st.cost) + Cost.cast;
          Machine.set_int st.fr r (Lower.truncate_to w (Int64.of_float (ev st)))
    | L.Li_to_f (r, src_w, L.Lreg s) ->
        fun st ->
          st.cost := !(st.cost) + Cost.cast;
          let fr = st.fr in
          Machine.set_float fr r
            (Int64.to_float (Lower.sign_extend src_w (Machine.reg_int fr s)))
    | L.Li_to_f (r, src_w, v) ->
        let ev = op_int v in
        fun st ->
          st.cost := !(st.cost) + Cost.cast;
          Machine.set_float st.fr r (Int64.to_float (Lower.sign_extend src_w (ev st)))
    | L.Lselect (r, c, a, b) -> (
        let ca = cop_copy r a and cb = cop_copy r b in
        match c with
        | L.Lreg rc ->
            fun st ->
              st.cost := !(st.cost) + Cost.select;
              if Int64.equal (Machine.reg_int st.fr rc) 0L then cb st else ca st
        | _ ->
            let ec = op_int c in
            fun st ->
              st.cost := !(st.cost) + Cost.select;
              if Int64.equal (ec st) 0L then cb st else ca st)
    (* calls: the only steps that can set [deopt] — a callee (or a chain
       through one) may activate fault injection, after which the rest of
       the run must keep the lowered engine's block-by-block shape *)
    | L.Lcall (r, callee, args, cost) -> (
        let eas = Array.map op_val args in
        let nargs = Array.length eas in
        let eval_args st =
          let argv = Array.make nargs (L.I 0L) in
          for i = 0 to nargs - 1 do
            argv.(i) <- (Array.unsafe_get eas i) st
          done;
          argv
        in
        match callee with
        | L.Lfun lf ->
            fun st ->
              st.cost := !(st.cost) + cost;
              let argv = eval_args st in
              let was = R.fault_active st.rt in
              let res = R.call_lfun st.rt lf argv in
              if (not was) && R.fault_active st.rt then begin
                st.deopt <- true;
                Atomic.incr deopts
              end;
              finish st r lf.L.lname res
        | L.Lextern (slot, name) ->
            fun st ->
              st.cost := !(st.cost) + cost;
              let argv = eval_args st in
              let was = R.fault_active st.rt in
              let res = R.call_extern_slot st.rt slot name argv in
              if (not was) && R.fault_active st.rt then begin
                st.deopt <- true;
                Atomic.incr deopts
              end;
              finish st r name res
        | L.Lindirect o ->
            let eo = op_int o in
            fun st ->
              st.cost := !(st.cost) + cost;
              let addr = eo st in
              let name = R.indirect_name st.rt addr in
              let argv = eval_args st in
              let was = R.fault_active st.rt in
              let res = R.call_named st.rt name argv in
              if (not was) && R.fault_active st.rt then begin
                st.deopt <- true;
                Atomic.incr deopts
              end;
              finish st r name res)
    | L.Lpoison e -> fun _ -> raise e
    (* fused superinstructions: gep charge, address compute, address-
       register write, access charge, access — the order of the
       two-instruction originals *)
    | L.Lload_idx (r, L.Kint n, rp, esz, L.Lreg p, L.Lreg i) ->
        let e64 = Int64.of_int esz in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          let base = Machine.reg_int fr p in
          let idx = Machine.reg_int fr i in
          let addr = Int64.add base (Int64.mul idx e64) in
          Machine.set_int fr rp addr;
          st.cost :=
            !(st.cost) + Cost.load
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          Machine.set_int fr r (Mem.read_int st.mem addr n)
    | L.Lload_idx (r, L.Kfloat, rp, esz, L.Lreg p, L.Lreg i) ->
        let e64 = Int64.of_int esz in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          let base = Machine.reg_int fr p in
          let idx = Machine.reg_int fr i in
          let addr = Int64.add base (Int64.mul idx e64) in
          Machine.set_int fr rp addr;
          st.cost :=
            !(st.cost) + Cost.load
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          Bytes.unsafe_set fr.Machine.tags r '\001';
          Machine.reg_set fr.Machine.bits (r lsl 3) (Mem.read_int st.mem addr 8)
    | L.Lload_idx (r, k, rp, esz, p, i) -> (
        let ep = op_int p and ei = op_int i in
        let e64 = Int64.of_int esz in
        let access : cstate -> int64 -> unit =
          match k with
          | L.Kint n ->
              fun st addr -> Machine.set_int st.fr r (Mem.read_int st.mem addr n)
          | L.Kfloat ->
              fun st addr ->
                let fr = st.fr in
                Bytes.unsafe_set fr.Machine.tags r '\001';
                Machine.reg_set fr.Machine.bits (r lsl 3)
                  (Mem.read_int st.mem addr 8)
          | L.Kbad ->
              fun _ _ -> raise (Machine.Vm_error "load of non-scalar")
        in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let base = ep st in
          let idx = ei st in
          let addr = Int64.add base (Int64.mul idx e64) in
          Machine.set_int st.fr rp addr;
          st.cost :=
            !(st.cost) + Cost.load
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          access st addr)
    | L.Lload_fld (r, L.Kint n, rp, off, L.Lreg p) ->
        let o64 = Int64.of_int off in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          let addr = Int64.add (Machine.reg_int fr p) o64 in
          Machine.set_int fr rp addr;
          st.cost :=
            !(st.cost) + Cost.load
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          Machine.set_int fr r (Mem.read_int st.mem addr n)
    | L.Lload_fld (r, L.Kfloat, rp, off, L.Lreg p) ->
        let o64 = Int64.of_int off in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          let addr = Int64.add (Machine.reg_int fr p) o64 in
          Machine.set_int fr rp addr;
          st.cost :=
            !(st.cost) + Cost.load
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          Bytes.unsafe_set fr.Machine.tags r '\001';
          Machine.reg_set fr.Machine.bits (r lsl 3) (Mem.read_int st.mem addr 8)
    | L.Lload_fld (r, k, rp, off, p) -> (
        let ep = op_int p in
        let o64 = Int64.of_int off in
        let access : cstate -> int64 -> unit =
          match k with
          | L.Kint n ->
              fun st addr -> Machine.set_int st.fr r (Mem.read_int st.mem addr n)
          | L.Kfloat ->
              fun st addr ->
                let fr = st.fr in
                Bytes.unsafe_set fr.Machine.tags r '\001';
                Machine.reg_set fr.Machine.bits (r lsl 3)
                  (Mem.read_int st.mem addr 8)
          | L.Kbad ->
              fun _ _ -> raise (Machine.Vm_error "load of non-scalar")
        in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let addr = Int64.add (ep st) o64 in
          Machine.set_int st.fr rp addr;
          st.cost :=
            !(st.cost) + Cost.load
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          access st addr)
    | L.Lstore_idx (L.Kint n, L.Lreg s, rp, esz, L.Lreg p, L.Lreg i) ->
        let e64 = Int64.of_int esz in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          let base = Machine.reg_int fr p in
          let idx = Machine.reg_int fr i in
          let addr = Int64.add base (Int64.mul idx e64) in
          Machine.set_int fr rp addr;
          st.cost :=
            !(st.cost) + Cost.store
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          if Bytes.unsafe_get fr.Machine.tags s <> '\000' then
            raise (Machine.Vm_error "store: float value into int slot");
          Mem.write_int st.mem addr n (Machine.reg_get fr.Machine.bits (s lsl 3))
    | L.Lstore_idx (L.Kint n, L.Lconst (L.I y), rp, esz, L.Lreg p, L.Lreg i) ->
        let e64 = Int64.of_int esz in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          let base = Machine.reg_int fr p in
          let idx = Machine.reg_int fr i in
          let addr = Int64.add base (Int64.mul idx e64) in
          Machine.set_int fr rp addr;
          st.cost :=
            !(st.cost) + Cost.store
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          Mem.write_int st.mem addr n y
    | L.Lstore_idx (k, v, rp, esz, p, i) ->
        let ep = op_int p and ei = op_int i in
        let e64 = Int64.of_int esz in
        let wr = gwrite k v in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let base = ep st in
          let idx = ei st in
          let addr = Int64.add base (Int64.mul idx e64) in
          Machine.set_int st.fr rp addr;
          st.cost :=
            !(st.cost) + Cost.store
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          wr st addr
    | L.Lstore_fld (L.Kint n, L.Lreg s, rp, off, L.Lreg p) ->
        let o64 = Int64.of_int off in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let fr = st.fr in
          let addr = Int64.add (Machine.reg_int fr p) o64 in
          Machine.set_int fr rp addr;
          st.cost :=
            !(st.cost) + Cost.store
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          if Bytes.unsafe_get fr.Machine.tags s <> '\000' then
            raise (Machine.Vm_error "store: float value into int slot");
          Mem.write_int st.mem addr n (Machine.reg_get fr.Machine.bits (s lsl 3))
    | L.Lstore_fld (k, v, rp, off, p) ->
        let ep = op_int p in
        let o64 = Int64.of_int off in
        let wr = gwrite k v in
        fun st ->
          st.cost := !(st.cost) + Cost.gep;
          let addr = Int64.add (ep st) o64 in
          Machine.set_int st.fr rp addr;
          st.cost :=
            !(st.cost) + Cost.store
            + Cost.heap_pressure (Allocator.live_bytes st.alloc);
          wr st addr

  (* ---- terminators ------------------------------------------------- *)

  let resolve = function L.Bidx i -> i | L.Braise e -> raise e

  (* fused compare-and-branch, shared by [Lcmpbr] and [Lcmpcheck] (the
     check's compare event only exists under a trace sink, which the
     compiled tier never runs under) *)
  let cmpbr r c w a b t1 t2 : cstate -> int =
    match (a, b, t1, t2) with
    | L.Lreg ra, L.Lreg rb, L.Bidx i1, L.Bidx i2 ->
        fun st ->
          st.cost := !(st.cost) + Cost.cmp;
          let fr = st.fr in
          let vb = Machine.reg_int fr rb in
          let va = Machine.reg_int fr ra in
          let v = Machine.exec_icmp c w va vb in
          Machine.set_int fr r v;
          st.cost := !(st.cost) + Cost.cond_branch;
          if Int64.equal v 0L then i2 else i1
    | L.Lreg ra, L.Lconst (L.I kb), L.Bidx i1, L.Bidx i2 ->
        fun st ->
          st.cost := !(st.cost) + Cost.cmp;
          let fr = st.fr in
          let va = Machine.reg_int fr ra in
          let v = Machine.exec_icmp c w va kb in
          Machine.set_int fr r v;
          st.cost := !(st.cost) + Cost.cond_branch;
          if Int64.equal v 0L then i2 else i1
    | _ ->
        let eb = op_int b and ea = op_int a in
        fun st ->
          st.cost := !(st.cost) + Cost.cmp;
          let vb = eb st in
          let va = ea st in
          let v = Machine.exec_icmp c w va vb in
          Machine.set_int st.fr r v;
          st.cost := !(st.cost) + Cost.cond_branch;
          resolve (if Int64.equal v 0L then t2 else t1)

  (* A terminator closure returns the next block index, or -1 for return
     (value parked in [cret]).  An [int] return stays immediate — the one
     closure-to-closure value the hot path is allowed to pass. *)
  let cterm (term : L.lterm) : cstate -> int =
    match term with
    | L.Lbr (L.Bidx i) ->
        fun st ->
          st.cost := !(st.cost) + Cost.branch;
          i
    | L.Lbr (L.Braise e) ->
        fun st ->
          st.cost := !(st.cost) + Cost.branch;
          raise e
    | L.Lcbr (L.Lreg r, L.Bidx i1, L.Bidx i2)
    | L.Lcheck (L.Lreg r, L.Bidx i1, L.Bidx i2, _, _) ->
        fun st ->
          st.cost := !(st.cost) + Cost.cond_branch;
          if Int64.equal (Machine.reg_int st.fr r) 0L then i2 else i1
    | L.Lcbr (c, t1, t2) | L.Lcheck (c, t1, t2, _, _) ->
        let ec = op_int c in
        fun st ->
          st.cost := !(st.cost) + Cost.cond_branch;
          resolve (if Int64.equal (ec st) 0L then t2 else t1)
    | L.Lcmpbr (r, c, w, a, b, t1, t2) -> cmpbr r c w a b t1 t2
    | L.Lcmpcheck (r, c, w, a, b, t1, t2, _, _) -> cmpbr r c w a b t1 t2
    | L.Lret None ->
        fun st ->
          st.cost := !(st.cost) + Cost.ret;
          st.cret <- None;
          -1
    | L.Lret (Some o) ->
        let eo = op_val o in
        fun st ->
          st.cost := !(st.cost) + Cost.ret;
          st.cret <- Some (eo st);
          -1
    | L.Lunreachable msg -> fun _ -> raise (Machine.Vm_error msg)

  (* ---- superinstruction fusion and block assembly ------------------ *)

  (* Fuse a straight-line run of steps into a right-leaning chain, up to
     three steps per node: each node is one closure invocation for three
     instructions, and the tail call into the next node keeps the chain
     allocation-free at run time. *)
  let rec fuse (steps : step array) i (term : cstate -> int) : cstate -> int =
    let n = Array.length steps in
    if i >= n then term
    else if n - i >= 3 then begin
      let a = steps.(i) and b = steps.(i + 1) and c = steps.(i + 2) in
      let rest = fuse steps (i + 3) term in
      fun st ->
        a st;
        b st;
        c st;
        rest st
    end
    else if n - i = 2 then begin
      let a = steps.(i) and b = steps.(i + 1) in
      fun st ->
        a st;
        b st;
        term st
    end
    else begin
      let a = steps.(i) in
      fun st ->
        a st;
        term st
    end

  (* One closure per basic block.  The prologue replicates
     [Vm.check_budget] exactly — budget test, then the captured step-poll
     hook — so timeouts and cooperative cancellation fire at the same
     block boundaries as the lowered engine (cancellation deoptimizes by
     unwinding: the raise leaves compiled code with no state to save). *)
  let cblock (b : L.lblock) : cstate -> int =
    let body = fuse (Array.map cinst b.L.linsts) 0 (cterm b.L.lterm) in
    fun st ->
      if !(st.cost) > st.budget then raise Machine.Timeout_exceeded;
      (match st.poll with None -> () | Some f -> f ());
      body st

  type cfunc = {
    cf_blocks : (cstate -> int) array;
    cf_flags : int array;  (** {!Lower.lflags} per block, for deopt gating *)
  }

  (* The compiled code hangs off the shared [lfunc] through [Lower]'s
     extensible attachment slot, so the lowering stays compiler-agnostic
     and recompilation after [Make] is re-applied (it never is in
     production: [Vm] applies it once) would just shadow the constructor. *)
  type L.tier3 += Compiled of cfunc

  let compile_lfunc (lf : L.lfunc) : cfunc =
    {
      cf_blocks = Array.map cblock lf.L.lblocks;
      cf_flags = Array.map (fun (b : L.lblock) -> b.L.lflags) lf.L.lblocks;
    }

  let code_for (lf : L.lfunc) : cfunc =
    match lf.L.ltier3 with
    | Compiled cf -> cf
    | _ ->
        let cf = compile_lfunc lf in
        lf.L.ltier3 <- Compiled cf;
        Atomic.incr promotions;
        cf

  (* Drive loop: run block closures until return or deopt.  The deopt
     flag is only consulted after blocks that contain a call ([b_call] in
     the static flags) — the only steps that can set it — so straight
     ALU blocks chain with a single array load and compare between them. *)
  let enter (rt : R.t) (lf : L.lfunc) (fr : Machine.lframe) (idx0 : int) :
      result =
    let cf = code_for lf in
    let st =
      {
        rt;
        cost = R.cost rt;
        budget = R.budget rt;
        poll = Machine.poll_hook ();
        mem = R.mem rt;
        alloc = R.alloc rt;
        fr;
        cret = None;
        deopt = false;
      }
    in
    let blocks = cf.cf_blocks and flags = cf.cf_flags in
    let rec go idx =
      let n = (Array.unsafe_get blocks idx) st in
      if n < 0 then Rret st.cret
      else if Array.unsafe_get flags idx land L.b_call <> 0 && st.deopt then
        Rdeopt n
      else go n
    in
    go idx0
end
