(** Classification of a program run, matching the experiment descriptors
    and random variables of Table 3.2. *)

type t =
  | Normal  (** exit code 0 *)
  | App_exit of int  (** nonzero exit: error-indicating output *)
  | Crash of string  (** trap (segfault, invalid/double free, ...) *)
  | Dpmr_detect of string  (** a DPMR load or wrapper check fired *)
  | Timeout  (** instruction budget exceeded *)

type run = {
  outcome : t;
  cost : int64;  (** total cost units consumed *)
  output : string;  (** captured program output *)
  peak_heap_bytes : int;
  mapped_pages : int;
  fi_first_cost : int64 option;
      (** cost at first execution of fault-injection code ([SF] in
          Table 3.2 is [fi_first_cost <> None]) *)
}

val is_dpmr_detect : run -> bool
val is_crash : run -> bool
val to_string : t -> string
