(** Base external functions: a mini-libc plus the VM intrinsics DPMR's
    generated code uses.

    Untransformed (golden / fi-stdapp) programs call these directly;
    transformed programs call the [<name>_efw] wrappers registered by
    [Dpmr_core.Ext_wrappers], which delegate their underlying behaviour
    to the [impl_*] functions exposed here. *)

(** {1 Simulated-memory helpers} *)

val read_cstring : Vm.t -> int64 -> string
val cstring_len : Vm.t -> int64 -> int

(** {1 Shared implementations} *)

val impl_strlen : Vm.t -> int64 -> int

(** Copies including the NUL; returns the source length. *)
val impl_strcpy : Vm.t -> dst:int64 -> src:int64 -> int

(** Returns (comparison result, bytes read from each input) — the read
    count drives the wrapper's prefix checks (§3.1.5). *)
val impl_strcmp : Vm.t -> int64 -> int64 -> int * int

val impl_memcpy : Vm.t -> dst:int64 -> src:int64 -> int -> unit
val impl_memset : Vm.t -> int64 -> int -> int -> unit

(** Returns (value, characters consumed). *)
val impl_atoi : Vm.t -> int64 -> int64 * int

val dpmr_vm_cost_calloc : int -> int

(** Allocate-copy-free realloc; accepts a null original. *)
val impl_realloc : Vm.t -> int64 -> int -> int64

val impl_qsort : Vm.t -> base:int64 -> nmemb:int -> size:int -> cmp_name:string -> unit

(** Renders a printf format against variadic values; returns the rendered
    string and, per [%s] conversion, (argument index, address, bytes
    read) for the wrapper's load checks. *)
val impl_printf : Vm.t -> int64 -> Vm.value array -> string * (int * int64 * int) list

(** Append to the VM's captured output. *)
val out : Vm.t -> string -> unit

(** {1 Registration} *)

(** Register the mini-libc and the [__dpmr_*]/[__fi_*] intrinsics. *)
val register_base : Vm.t -> unit

(** Declare the extern signatures into a program (for the verifier and
    the transformation). *)
val declare_signatures : Dpmr_ir.Prog.t -> unit
