(** Deterministic execution cost model.

    The paper's performance results (Figures 3.10, 3.15, 4.3–4.6) compare
    instrumentation variants *relative to a golden build* on real
    hardware.  We replace wall-clock time with cost units charged per
    executed instruction.  The constants encode the first-order effects
    the dissertation's analysis appeals to:

    - loads/stores dominate and DPMR multiplies them;
    - branches carry a misprediction-shaped surcharge, which is why
      temporal load-checking (extra branch per load) is *slower* than
      checking every load (§3.8);
    - allocation cost grows with the number of bytes touched, which is why
      large pad-malloc variants are the most expensive diversity
      transforms and why they "cross cache page boundaries" (§3.7). *)

let load = 3
let store = 3
let gep = 1
let alu = 1
let falu = 2
let cmp = 1
let cast = 1
let select = 2
let branch = 1
let cond_branch = 3
let call_base = 6
let call_per_arg = 1
let ret = 2

(** malloc: fixed path cost plus a per-touched-cache-line term. *)
let malloc_cost bytes = 40 + (bytes / 32)

let free_cost = 25
let alloca_cost bytes = 2 + (bytes / 64)

(** Tier-3 promotion threshold, in executed lowered blocks per function:
    beyond this the dispatch overhead already paid exceeds the one-time
    price of closure-compiling the function, so {!Vm} promotes it.  Cost
    units are untouched by tiering — the compiled tier charges this
    model identically. *)
let tier_promote_blocks = 500

(** Cache-pressure model: every load/store pays an extra term that grows
    with the *live* heap working set (one unit per 32 KiB).  This is the
    §3.7 hypothesis — large pad-malloc variants "cross cache page
    boundaries", diluting locality on every access — made concrete:
    padding inflates the live replica footprint, and the inflation taxes
    all subsequent memory traffic.  rearrange-heap's scratch allocations
    are freed immediately, so they cost only while held. *)
let heap_pressure live_bytes = live_bytes lsr 15
