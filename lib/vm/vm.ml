(** The interpreter: executes an IR program against the simulated memory
    subsystem, charging the {!Cost} model, dispatching external functions,
    and classifying the run per {!Outcome}.

    Two engines share all VM state and must agree bit-for-bit:

    - the {b lowered} engine (default, used by {!run}) executes the
      pre-resolved threaded form produced by {!Lower} — block ids instead
      of label lookups, baked layouts and cast widths, pre-bound callees;
    - the {b reference} engine ({!run_reference}) is the original
      tree-walking interpreter over {!Func.t}, kept as the executable
      specification the differential tests compare against.

    The [use_lowered] flag routes {!call_function}, so externs that
    re-enter the interpreter (e.g. the qsort comparator callback) stay on
    whichever engine started the run. *)

open Dpmr_ir
open Dpmr_memsim
open Types
open Inst
module L = Lower
module Trace = Dpmr_trace.Trace

type value = Lower.value = I of int64 | F of float

(* The classification exceptions, the step-poll hook and the scalar-op
   semantics live in {!Machine}, shared with the closure-compiled tier
   ({!Compile}, instantiated at the bottom of this file).  Rebinding
   keeps the constructors physically identical, so a [Machine.Vm_error]
   raised from compiled code is caught by [classify_run] below. *)
exception Exit_program = Machine.Exit_program
exception Dpmr_detected = Machine.Dpmr_detected
exception Timeout_exceeded = Machine.Timeout_exceeded
exception Vm_error = Machine.Vm_error
exception Cancelled = Machine.Cancelled

let poll_key = Machine.poll_key
let set_poll_hook = Machine.set_poll_hook

(* ------------------------------------------------------------------ *)
(* Execution tiers                                                     *)
(* ------------------------------------------------------------------ *)

(** Which engine executes a run.  [Tier_auto] (default) starts every
    function on the lowered interpreter and promotes it to the compiled
    closure tier once hot; the other modes pin one engine, for
    differential testing and paired benchmarking.  Process-global: set
    it before spawning worker domains. *)
type tier_mode = Tier_auto | Tier_ref | Tier_lowered | Tier_compiled

let tier_mode_ref = ref Tier_auto

(* promotion threshold in executed lowered blocks per function;
   [max_int] disables promotion, [0] promotes on first entry *)
let tier_threshold = ref Cost.tier_promote_blocks

let set_tier_mode m =
  tier_mode_ref := m;
  tier_threshold :=
    (match m with
    | Tier_auto -> Cost.tier_promote_blocks
    | Tier_compiled -> 0
    | Tier_ref | Tier_lowered -> max_int)

let tier_mode () = !tier_mode_ref

let tier_mode_of_string = function
  | "auto" -> Some Tier_auto
  | "ref" -> Some Tier_ref
  | "lowered" -> Some Tier_lowered
  | "compiled" -> Some Tier_compiled
  | _ -> None

let () =
  match Sys.getenv_opt "DPMR_TIER" with
  | None | Some "" -> ()
  | Some s -> (
      match tier_mode_of_string s with
      | Some m -> set_tier_mode m
      | None -> invalid_arg (Printf.sprintf "DPMR_TIER: unknown tier %S" s))

type t = {
  prog : Prog.t;
  lprog : Lower.prog;
  mutable mem : Mem.t;  (** mutable only for {!resume}: forks swap in a thawed space *)
  mutable alloc : Allocator.t;
  mutable sp : int64;
  global_addr : (string, int64) Hashtbl.t;
  fun_addr : (string, int64) Hashtbl.t;
  addr_fun : (int64, string) Hashtbl.t;
  mutable next_fun_addr : int64;
  out : Buffer.t;
  cost : int ref;
      (** a [ref] rather than a mutable field so the compiled tier can
          capture it once per entry and charge without touching [t] *)
  mutable budget : int;  (** raise {!Timeout_exceeded} when cost exceeds *)
  rng : Rng.t;
  externs : (string, extern) Hashtbl.t;
  extern_slots : extern option array;
      (** per-VM resolution of the {!Lower.Lextern} call slots *)
  mutable fi_first_cost : int option;
  mutable call_depth : int;
  mutable use_lowered : bool;  (** engine selector for {!call_function} *)
  trace : Trace.t option;
      (** the domain's trace sink, captured once at {!create} — a [t]
          field rather than a per-event DLS read so the disabled case
          costs one immediate pointer test on each would-be event *)
}

and extern = t -> value list -> value option

let add_cost t c = t.cost := !(t.cost) + c

let check_budget t =
  if !(t.cost) > t.budget then raise Timeout_exceeded;
  match Domain.DLS.get poll_key with None -> () | Some f -> f ()

let as_int = function I v -> v | F _ -> raise (Vm_error "expected int/pointer value")
let as_float = function F v -> v | I _ -> raise (Vm_error "expected float value")

(* eta-expanded so the calls inline: a bare closure alias would route
   every ALU instruction through a generic (boxing) application *)
let[@inline] truncate_to w v = Lower.truncate_to w v
let[@inline] sign_extend w v = Lower.sign_extend w v

(* ------------------------------------------------------------------ *)
(* Construction and program loading                                    *)
(* ------------------------------------------------------------------ *)

let fun_address t name =
  match Hashtbl.find_opt t.fun_addr name with
  | Some a -> a
  | None ->
      let a = t.next_fun_addr in
      t.next_fun_addr <- Int64.add a 16L;
      Hashtbl.replace t.fun_addr name a;
      Hashtbl.replace t.addr_fun a name;
      a

(* [Hashtbl.find], not [find_opt]: globals are read inside hot loops and
   the intermediate [Some] would be an allocation per access *)
let global_address t name =
  match Hashtbl.find t.global_addr name with
  | a -> a
  | exception Not_found ->
      raise (Vm_error (Printf.sprintf "no address for global %S" name))

(* Write a structural initializer at [addr]. *)
let rec write_ginit t addr ty (g : Prog.ginit) =
  let tenv = t.prog.tenv in
  match (g, ty) with
  | Prog.Gzero, _ -> Mem.fill t.mem addr (Layout.size_of tenv ty) 0
  | Prog.Gint v, Int w -> Mem.write_int t.mem addr (bytes_of_width w) v
  | Prog.Gfloat x, Float -> Mem.write_f64 t.mem addr x
  | Prog.Gptr_null, Ptr _ -> Mem.write_int t.mem addr 8 0L
  | Prog.Gptr_global gname, Ptr _ -> Mem.write_int t.mem addr 8 (global_address t gname)
  | Prog.Gptr_fun fname, Ptr _ -> Mem.write_int t.mem addr 8 (fun_address t fname)
  | Prog.Gstring s, Arr (Int W8, n) ->
      let len = min (String.length s) (n - 1) in
      for i = 0 to len - 1 do
        Mem.write_u8 t.mem (Int64.add addr (Int64.of_int i)) (Char.code s.[i])
      done;
      Mem.fill t.mem (Int64.add addr (Int64.of_int len)) (n - len) 0
  | Prog.Gagg gs, Arr (e, n) ->
      let esz = Layout.size_of tenv e in
      List.iteri
        (fun i gi ->
          if i < n then write_ginit t (Int64.add addr (Int64.of_int (i * esz))) e gi)
        gs
  | Prog.Gagg gs, Struct sname ->
      (* walk initializers, field types and offsets together — indexing
         the lists per element made large struct initializers quadratic *)
      let rec go gs fields offs =
        match (gs, fields, offs) with
        | [], _, _ -> ()
        | gi :: gs', fty :: fields', off :: offs' ->
            write_ginit t (Int64.add addr (Int64.of_int off)) fty gi;
            go gs' fields' offs'
        | _ :: _, _, _ ->
            (* more initializers than fields: fail as [List.nth] did *)
            raise (Failure "nth")
      in
      go gs (Tenv.fields tenv sname) (Layout.field_offsets tenv sname)
  | _ ->
      raise
        (Vm_error
           (Fmt.str "bad global initializer for type %a" Types.pp ty))

let layout_globals t =
  let cursor = ref Mem.globals_base in
  (* first pass: assign addresses (initializers may reference any global) *)
  Prog.iter_globals t.prog (fun g ->
      let tenv = t.prog.tenv in
      let size = max 1 (Layout.size_of tenv g.gty) in
      let algn = Layout.align_of tenv g.gty in
      let addr =
        Int64.of_int (Layout.round_up (Int64.to_int !cursor) algn)
      in
      Mem.map_range t.mem addr size Mem.Fill_zero;
      Hashtbl.replace t.global_addr g.gname addr;
      cursor := Int64.add addr (Int64.of_int size));
  (* second pass: write initializers *)
  Prog.iter_globals t.prog (fun g ->
      write_ginit t (Hashtbl.find t.global_addr g.gname) g.gty g.ginit)

let create ?(seed = 42L) ?(budget = 2_000_000_000L) ?lowered prog =
  let lprog =
    match lowered with
    | Some lp when lp.L.src == prog -> lp
    | Some _ | None -> Lower.lower_prog prog
  in
  let mem = Mem.create ~seed () in
  let t =
    {
      prog;
      lprog;
      mem;
      alloc = Allocator.create mem;
      sp = Mem.stack_base;
      global_addr = Hashtbl.create 32;
      fun_addr = Hashtbl.create 32;
      addr_fun = Hashtbl.create 32;
      next_fun_addr = 0x2000_0000L;
      out = Buffer.create 256;
      cost = ref 0;
      budget = Int64.to_int budget;
      rng = Rng.create seed;
      externs = Hashtbl.create 64;
      extern_slots = Array.make lprog.L.n_slots None;
      fi_first_cost = None;
      call_depth = 0;
      use_lowered = true;
      trace = Trace.current ();
    }
  in
  (* the allocator and phase markers timestamp events through the sink's
     clock; point it at this VM's cost counter *)
  (match t.trace with
  | Some s -> Trace.set_clock s (fun () -> !(t.cost))
  | None -> ());
  layout_globals t;
  t

let register_extern t name fn =
  Hashtbl.replace t.externs name fn;
  (* keep any already-bound call slot in sync with the re-registration *)
  match Hashtbl.find_opt t.lprog.L.slot_of_name name with
  | Some i -> t.extern_slots.(i) <- Some fn
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Shared execution helpers                                            *)
(* ------------------------------------------------------------------ *)

type frame = { regs : value array; entry_sp : int64 }

let[@inline] exec_binop op w a b =
  let sa = sign_extend w a and sb = sign_extend w b in
  let r =
    match op with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Sdiv ->
        if Int64.equal sb 0L then raise (Vm_error "division by zero")
        else Int64.div sa sb
    | Srem ->
        if Int64.equal sb 0L then raise (Vm_error "division by zero")
        else Int64.rem sa sb
    | Udiv ->
        if Int64.equal b 0L then raise (Vm_error "division by zero")
        else Int64.unsigned_div a b
    | Urem ->
        if Int64.equal b 0L then raise (Vm_error "division by zero")
        else Int64.unsigned_rem a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
    | Lshr -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
    | Ashr -> Int64.shift_right sa (Int64.to_int (Int64.logand b 63L))
  in
  truncate_to w r

let[@inline] exec_icmp c w a b =
  let sa = sign_extend w a and sb = sign_extend w b in
  let r =
    match c with
    | Ieq -> Int64.equal a b
    | Ine -> not (Int64.equal a b)
    | Islt -> Int64.compare sa sb < 0
    | Isle -> Int64.compare sa sb <= 0
    | Isgt -> Int64.compare sa sb > 0
    | Isge -> Int64.compare sa sb >= 0
    | Iult -> Int64.unsigned_compare a b < 0
    | Iule -> Int64.unsigned_compare a b <= 0
    | Iugt -> Int64.unsigned_compare a b > 0
    | Iuge -> Int64.unsigned_compare a b >= 0
  in
  if r then 1L else 0L

let[@inline] exec_fcmp c a b =
  let r =
    match c with
    | Foeq -> a = b
    | Fone -> a <> b
    | Folt -> a < b
    | Fole -> a <= b
    | Fogt -> a > b
    | Foge -> a >= b
  in
  if r then 1L else 0L

let max_call_depth = 10_000

(* Reference-engine scalar moves (the lowered engine bakes the kind). *)

let load_scalar t ty addr =
  match ty with
  | Float -> F (Mem.read_f64 t.mem addr)
  | Int w -> I (Mem.read_int t.mem addr (bytes_of_width w))
  | Ptr _ -> I (Mem.read_int t.mem addr 8)
  | _ -> raise (Vm_error "load of non-scalar")

let store_scalar t ty addr v =
  match (ty, v) with
  | Float, F x -> Mem.write_f64 t.mem addr x
  | Float, I bits -> Mem.write_f64 t.mem addr (Int64.float_of_bits bits)
  | Int w, I x -> Mem.write_int t.mem addr (bytes_of_width w) x
  | Ptr _, I x -> Mem.write_int t.mem addr 8 x
  | Int _, F _ | Ptr _, F _ -> raise (Vm_error "store: float value into int slot")
  | _ -> raise (Vm_error "store of non-scalar")

(* Lowered-engine register file: a flat byte buffer, 8 bytes per
   register, plus one tag byte per register ('\000' int, '\001' float).
   Keeping scalars out of [value] boxes is the difference between ~5
   words of allocation per executed ALU instruction and none: results
   flow between [Bytes] 64-bit primitives unboxed, and [I]/[F] boxes are
   built only at call, return and extern boundaries.  Register indices
   come from {!Lower} and are always < [lnregs], so the unchecked
   accessors are in range. *)

external reg_get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external reg_set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* the frame type is {!Machine}'s, so the compiled tier executes the
   very same record the lowered engine allocated — promotion shares the
   register file, deoptimization needs no state copy at all *)
type lframe = Machine.lframe = {
  bits : Bytes.t;
  tags : Bytes.t;
  lentry_sp : int64;
}

(* same poison as the boxed register file had: an uninitialized register
   reads back as the int 0xDEADBEEF *)
let make_lframe nregs sp =
  let bits = Bytes.create (nregs lsl 3) in
  let tags = Bytes.make nregs '\000' in
  for r = 0 to nregs - 1 do
    reg_set bits (r lsl 3) 0xDEADBEEFL
  done;
  { bits; tags; lentry_sp = sp }

(* Entry point of the compiled tier, tied after the recursive execution
   knot below ({!Compile} needs the knot's call helpers, the knot needs
   this to promote).  Never read before the initializer at the bottom of
   this file runs. *)
let tier_enter : (t -> L.lfunc -> lframe -> int -> Compile.result) ref =
  ref (fun _ _ _ _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Copy-on-write snapshots: types and watched-execution context        *)
(* ------------------------------------------------------------------ *)

(* One captured activation record: where the frame stood (function,
   block, instruction) and a private copy of its register file.  For the
   innermost frame [sf_inst] is the next instruction to execute; for
   every outer frame it indexes the in-flight [Lcall]. *)
type snap_frame = {
  sf_fname : string;
  sf_bidx : int;
  sf_inst : int;
  sf_bits : Bytes.t;
  sf_tags : Bytes.t;
  sf_entry_sp : int64;
}

type snapshot = {
  sn_mem : Mem.frozen;
  sn_alloc : Allocator.frozen;
  sn_rng : int64;
  sn_sp : int64;
  sn_cost : int;
  sn_out : string;
  sn_funaddr : (string * int64) list;  (* first-use address assignments, by name *)
  sn_next_fun_addr : int64;
  sn_frames : snap_frame list;  (* outermost first *)
  sn_hash : int64;
}

(* Live shadow of one activation during a watched run, updated as
   execution moves so a fire can capture the whole stack. *)
type wframe = {
  wf_fname : string;
  mutable wf_bidx : int;
  mutable wf_inst : int;
  wf_frame : lframe;
}

(* One watched group member: its divergence frontier
   ({!Lower.diff_limits} against the baseline) and how it resolved.
   Exactly one of the three outcomes holds when the watch ends:
   captured ([wm_snap]), unsharable ([wm_unsharable] — the frontier was
   reached where a fork cannot resume), or still active (the baseline
   never reached the frontier, so the member inherits the baseline's
   whole run). *)
type wmember = {
  wm_limits : (string, int array) Hashtbl.t;
  mutable wm_snap : snapshot option;
  mutable wm_unsharable : bool;
}

type wctx = {
  w_members : wmember array;
  mutable w_merged : (string, int array) Hashtbl.t;
      (** elementwise-min frontier over the still-active members: fire
          before executing instruction [merged.(blk)] of a listed
          function's block; rebuilt after every fire *)
  mutable w_active : int;
  mutable w_stack : wframe list;  (** innermost first *)
  mutable w_extern : int;  (** depth of extern calls currently on the stack *)
}

exception Watch_done
(** Internal: every member is resolved — the rest of the baseline run
    serves nobody, so unwind it. *)

exception Watch_infeasible
(** The whole watch is impossible on this VM (tracing active).  Callers
    fall back to from-zero execution. *)

(* Watched context of the domain's current baseline run.  A DLS slot
   rather than a [t] field keeps the snapshot machinery entirely off the
   record (and off the mli): only [call_function] — the extern re-entry
   path — consults it. *)
let wctx_key : wctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let[@inline] reg_int fr r =
  if Bytes.unsafe_get fr.tags r <> '\000' then
    raise (Vm_error "expected int/pointer value");
  reg_get fr.bits (r lsl 3)

let[@inline] reg_float fr r =
  if Bytes.unsafe_get fr.tags r = '\000' then
    raise (Vm_error "expected float value");
  Int64.float_of_bits (reg_get fr.bits (r lsl 3))

let[@inline] set_int fr r x =
  Bytes.unsafe_set fr.tags r '\000';
  reg_set fr.bits (r lsl 3) x

let[@inline] set_float fr r x =
  Bytes.unsafe_set fr.tags r '\001';
  reg_set fr.bits (r lsl 3) (Int64.bits_of_float x)

let[@inline] set_value fr r = function
  | I x -> set_int fr r x
  | F x -> set_float fr r x

(* Operand evaluation.  [leval_int o] ≡ [as_int (leval o)] and
   [leval_float o] ≡ [as_float (leval o)] of the boxed form: same
   raises, same order — notably [Lfun_name] assigns the function its
   address {e before} a type-mismatch error surfaces. *)

let[@inline] leval t fr (o : L.lop) =
  match o with
  | L.Lreg r ->
      if Bytes.unsafe_get fr.tags r = '\000' then I (reg_get fr.bits (r lsl 3))
      else F (Int64.float_of_bits (reg_get fr.bits (r lsl 3)))
  | L.Lconst v -> v
  | L.Lglobal g -> I (global_address t g)
  | L.Lfun_name f -> I (fun_address t f)

(* the [Int64.add _ 0L] identities keep every arm a syntactic arithmetic
   expression, so the match join stays unboxed in callers (a bare
   variable or call-result arm would force one box per evaluation) *)
let[@inline] leval_int t fr (o : L.lop) =
  match o with
  | L.Lreg r -> reg_int fr r
  | L.Lconst (I x) -> Int64.add x 0L
  | L.Lconst (F _) -> raise (Vm_error "expected int/pointer value")
  | L.Lglobal g -> Int64.add (global_address t g) 0L
  | L.Lfun_name f -> Int64.add (fun_address t f) 0L

let[@inline] leval_float t fr (o : L.lop) =
  match o with
  | L.Lreg r -> reg_float fr r
  | L.Lconst (F x) -> Int64.float_of_bits (Int64.bits_of_float x)
  | L.Lconst (I _) -> raise (Vm_error "expected float value")
  | L.Lglobal g ->
      ignore (global_address t g);
      raise (Vm_error "expected float value")
  | L.Lfun_name f ->
      ignore (fun_address t f);
      raise (Vm_error "expected float value")

(* register-to-register moves copy bits and tag without boxing *)
let copy_op t fr r (o : L.lop) =
  match o with
  | L.Lreg s ->
      Bytes.unsafe_set fr.tags r (Bytes.unsafe_get fr.tags s);
      reg_set fr.bits (r lsl 3) (reg_get fr.bits (s lsl 3))
  | o -> set_value fr r (leval t fr o)

let resolve_target = function L.Bidx i -> i | L.Braise e -> raise e

let unknown_function name =
  raise (Vm_error (Printf.sprintf "call to unknown function %S" name))

(* ------------------------------------------------------------------ *)
(* Execution: both engines in one recursive knot (externs re-enter via  *)
(* [call_function], which routes on [use_lowered])                      *)
(* ------------------------------------------------------------------ *)

let rec call_function t name args =
  if t.use_lowered then
    match Hashtbl.find_opt t.lprog.L.funcs name with
    | Some lf -> (
        (* extern re-entry (e.g. a qsort comparator) must stay watched
           during a watched baseline, or a divergence inside the callback
           would be executed unnoticed and poison the snapshot *)
        match Domain.DLS.get wctx_key with
        | None -> exec_lfunc t lf (Array.of_list args)
        | Some w -> wexec_lfunc t w lf (Array.of_list args))
    | None -> (
        match Hashtbl.find_opt t.externs name with
        | Some fn -> fn t args
        | None -> unknown_function name)
  else
    match Hashtbl.find_opt t.prog.funcs name with
    | Some f -> exec_func t f args
    | None -> (
        match Hashtbl.find_opt t.externs name with
        | Some fn -> fn t args
        | None -> unknown_function name)

(* ---- lowered engine ---- *)

and exec_lfunc t (lf : L.lfunc) (args : value array) =
  if t.call_depth >= max_call_depth then raise (Vm_error "stack overflow");
  t.call_depth <- t.call_depth + 1;
  let nparams = Array.length lf.L.lparams in
  if Array.length args < nparams then
    raise
      (Vm_error
         (Printf.sprintf "%s: missing argument %d" lf.L.lname
            (Array.length args)));
  let frame = make_lframe lf.L.lnregs t.sp in
  for i = 0 to nparams - 1 do
    set_value frame lf.L.lparams.(i) args.(i)
  done;
  if Array.length lf.L.lblocks = 0 then
    invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" lf.L.lname);
  (match t.trace with
  | Some s -> Trace.emit_call_enter s ~cost:(!(t.cost)) ~fname:lf.L.lname
  | None -> ());
  let result = exec_lblocks t lf frame in
  (match t.trace with
  | Some s -> Trace.emit_call_exit s ~cost:(!(t.cost)) ~fname:lf.L.lname
  | None -> ());
  t.sp <- frame.lentry_sp;
  t.call_depth <- t.call_depth - 1;
  result

and exec_lblocks t (lf : L.lfunc) frame = exec_lblocks_at t lf frame 0 0

(* [exec_lblocks_at _ _ _ idx0 i0] enters block [idx0] at instruction
   [i0] — 0, 0 for a normal call; a mid-block position when [resume]
   re-enters a snapshotted activation.

   Every block boundary ([i0 = 0]) is also a tier-promotion point: once
   the function has executed [!tier_threshold] lowered blocks it enters
   the compiled tier — at call granularity for short hot functions, and
   mid-run (on-stack replacement: same frame, same block index) for a
   long-running loop that never returns.  Promotion is refused while
   full fidelity is required: a trace sink needs per-block samples and
   per-check compare events, and an activated fault injection must keep
   the block-by-block shape the forensics suite reasons about.  The
   compiled tier deoptimizes back here (a [Rdeopt] with the next block
   index) when fidelity demands appear mid-run. *)
and exec_lblocks_at t (lf : L.lfunc) frame idx0 i0 =
  let blocks = lf.L.lblocks in
  let rec go idx i0 =
    if i0 = 0 then begin
      let h = lf.L.lhot + 1 in
      lf.L.lhot <- h;
      if h >= !tier_threshold then
        if t.trace == None && t.fi_first_cost == None then
          match !tier_enter t lf frame idx with
          | Compile.Rret v -> v
          | Compile.Rdeopt b -> exec_block b 0
        else begin
          (* the only tier transition observable under a sink: record
             the refusal once, at the exact threshold crossing *)
          (if h = !tier_threshold then
             match t.trace with
             | Some s ->
                 Trace.emit_tier s ~cost:(!(t.cost)) ~fname:lf.L.lname
                   ~transition:Trace.Tier_refused
             | None -> ());
          exec_block idx 0
        end
      else exec_block idx 0
    end
    else exec_block idx i0
  and exec_block idx i0 =
    let (b : L.lblock) = blocks.(idx) in
    check_budget t;
    (match t.trace with
    | Some s -> Trace.sample_block s ~cost:(!(t.cost)) ~fname:lf.L.lname ~blk:idx
    | None -> ());
    let insts = b.L.linsts in
    for i = i0 to Array.length insts - 1 do
      exec_linst t frame (Array.unsafe_get insts i)
    done;
    match b.L.lterm with
    | L.Lbr tgt ->
        add_cost t Cost.branch;
        go (resolve_target tgt) 0
    | L.Lcbr (c, t1, t2) ->
        add_cost t Cost.cond_branch;
        let v = leval_int t frame c in
        go (resolve_target (if not (Int64.equal v 0L) then t1 else t2)) 0
    | L.Lcheck (c, t1, t2, d1, d2) ->
        (* identical to Lcbr, plus: a branch away from the detection
           block is a replica comparison that passed *)
        add_cost t Cost.cond_branch;
        let v = leval_int t frame c in
        let tgt, to_det = if not (Int64.equal v 0L) then (t1, d1) else (t2, d2) in
        (match t.trace with
        | Some s when not to_det ->
            Trace.emit_compare s ~cost:(!(t.cost)) ~app:(-1L) ~rep:(-1L) ~len:0
        | _ -> ());
        go (resolve_target tgt) 0
    | L.Lcmpbr (r, c, w, a, bb, t1, t2) ->
        (* fused [Licmp]+[Lcbr]: same costs, same register write *)
        add_cost t Cost.cmp;
        let vb = leval_int t frame bb in
        let va = leval_int t frame a in
        let v = exec_icmp c w va vb in
        set_int frame r v;
        add_cost t Cost.cond_branch;
        go (resolve_target (if not (Int64.equal v 0L) then t1 else t2)) 0
    | L.Lcmpcheck (r, c, w, a, bb, t1, t2, d1, d2) ->
        add_cost t Cost.cmp;
        let vb = leval_int t frame bb in
        let va = leval_int t frame a in
        let v = exec_icmp c w va vb in
        set_int frame r v;
        add_cost t Cost.cond_branch;
        let tgt, to_det = if not (Int64.equal v 0L) then (t1, d1) else (t2, d2) in
        (match t.trace with
        | Some s when not to_det ->
            Trace.emit_compare s ~cost:(!(t.cost)) ~app:(-1L) ~rep:(-1L) ~len:0
        | _ -> ());
        go (resolve_target tgt) 0
    | L.Lret o ->
        add_cost t Cost.ret;
        Option.map (leval t frame) o
    | L.Lunreachable msg -> raise (Vm_error msg)
  in
  go idx0 i0

and exec_linst t frame (inst : L.linst) =
  match inst with
  | L.Lmalloc (r, esz, n) ->
      let count = Int64.to_int (leval_int t frame n) in
      if count < 0 then raise (Vm_error "malloc: negative count");
      let bytes = count * esz in
      add_cost t (Cost.malloc_cost bytes);
      set_int frame r (Allocator.malloc t.alloc bytes)
  | L.Lalloca (r, esz, algn, n) ->
      let count = Int64.to_int (leval_int t frame n) in
      let bytes = max 1 (count * esz) in
      add_cost t (Cost.alloca_cost bytes);
      let addr = Int64.of_int (Layout.round_up (Int64.to_int t.sp) algn) in
      Mem.map_range t.mem addr bytes Mem.Fill_garbage;
      t.sp <- Int64.add addr (Int64.of_int bytes);
      set_int frame r addr
  | L.Lfree p ->
      add_cost t Cost.free_cost;
      let addr = leval_int t frame p in
      if not (Int64.equal addr 0L) then Allocator.free t.alloc addr
  | L.Lload (r, k, p) ->
      add_cost t (Cost.load + Cost.heap_pressure (Allocator.live_bytes t.alloc));
      let addr = leval_int t frame p in
      (match k with
      | L.Kint n -> set_int frame r (Mem.read_int t.mem addr n)
      | L.Kfloat ->
          (* F (read_f64 addr) stored as bits = the raw 8 loaded bytes *)
          Bytes.unsafe_set frame.tags r '\001';
          reg_set frame.bits (r lsl 3) (Mem.read_int t.mem addr 8)
      | L.Kbad -> raise (Vm_error "load of non-scalar"))
  | L.Lstore (k, v, p) ->
      add_cost t (Cost.store + Cost.heap_pressure (Allocator.live_bytes t.alloc));
      let addr = leval_int t frame p in
      (match t.trace with
      | Some s ->
          (* before the write, so a faulting store is still on record *)
          Trace.emit_store s ~cost:(!(t.cost)) ~addr
            ~bytes:(match k with L.Kint n -> n | L.Kfloat -> 8 | L.Kbad -> 0)
      | None -> ());
      (match k with
      | L.Kint n -> (
          match v with
          | L.Lreg s ->
              if Bytes.unsafe_get frame.tags s <> '\000' then
                raise (Vm_error "store: float value into int slot");
              Mem.write_int t.mem addr n (reg_get frame.bits (s lsl 3))
          | L.Lconst (I y) -> Mem.write_int t.mem addr n y
          | L.Lconst (F _) ->
              raise (Vm_error "store: float value into int slot")
          | L.Lglobal g -> Mem.write_int t.mem addr n (global_address t g)
          | L.Lfun_name f -> Mem.write_int t.mem addr n (fun_address t f))
      | L.Kfloat ->
          (* a float slot takes any value's bits verbatim: [F f] wrote
             [bits_of_float f], [I y] wrote [y] reinterpreted — both are
             exactly the operand's 64 bits *)
          let bits =
            match v with
            | L.Lreg s -> reg_get frame.bits (s lsl 3)
            | L.Lconst (I y) -> y
            | L.Lconst (F x) -> Int64.bits_of_float x
            | L.Lglobal g -> global_address t g
            | L.Lfun_name f -> fun_address t f
          in
          Mem.write_int t.mem addr 8 bits
      | L.Kbad ->
          ignore (leval t frame v);
          raise (Vm_error "store of non-scalar"))
  | L.Lgep_field (r, off, p) ->
      add_cost t Cost.gep;
      let base = leval_int t frame p in
      set_int frame r (Int64.add base (Int64.of_int off))
  | L.Lgep_index (r, esz, p, i) ->
      add_cost t Cost.gep;
      let base = leval_int t frame p in
      let idx = leval_int t frame i in
      set_int frame r (Int64.add base (Int64.mul idx (Int64.of_int esz)))
  | L.Lmov (r, p) ->
      add_cost t Cost.cast;
      copy_op t frame r p
  | L.Lbinop (r, op, w, a, b) ->
      add_cost t Cost.alu;
      (* second operand first: the reference engine's curried application
         evaluates its arguments right-to-left *)
      let vb = leval_int t frame b in
      let va = leval_int t frame a in
      set_int frame r (exec_binop op w va vb)
  | L.Lfbinop (r, op, a, b) ->
      add_cost t Cost.falu;
      let y = leval_float t frame b in
      let x = leval_float t frame a in
      let v =
        match op with
        | Fadd -> x +. y
        | Fsub -> x -. y
        | Fmul -> x *. y
        | Fdiv -> x /. y
      in
      set_float frame r v
  | L.Licmp (r, c, w, a, b) ->
      add_cost t Cost.cmp;
      let vb = leval_int t frame b in
      let va = leval_int t frame a in
      set_int frame r (exec_icmp c w va vb)
  | L.Lfcmp (r, c, a, b) ->
      add_cost t Cost.cmp;
      let vb = leval_float t frame b in
      let va = leval_float t frame a in
      set_int frame r (exec_fcmp c va vb)
  | L.Lint_cast (r, w, signed, src_w, v) ->
      add_cost t Cost.cast;
      let x = leval_int t frame v in
      let x = if signed then sign_extend src_w x else x in
      set_int frame r (truncate_to w x)
  | L.Lf_to_i (r, w, v) ->
      add_cost t Cost.cast;
      let x = leval_float t frame v in
      set_int frame r (truncate_to w (Int64.of_float x))
  | L.Li_to_f (r, src_w, v) ->
      add_cost t Cost.cast;
      let x = leval_int t frame v in
      set_float frame r (Int64.to_float (sign_extend src_w x))
  | L.Lselect (r, c, a, b) ->
      add_cost t Cost.select;
      let cv = leval_int t frame c in
      copy_op t frame r (if not (Int64.equal cv 0L) then a else b)
  | L.Lcall (r, callee, args, cost) -> (
      add_cost t cost;
      let eval_args () =
        let n = Array.length args in
        let argv = Array.make n (I 0L) in
        for i = 0 to n - 1 do
          argv.(i) <- leval t frame args.(i)
        done;
        argv
      in
      (* indirect callees resolve before argument evaluation; unknown
         names only fault after it — both as in the reference engine *)
      match callee with
      | L.Lfun lf -> finish_call t frame r lf.L.lname (exec_lfunc t lf (eval_args ()))
      | L.Lextern (slot, name) -> (
          let argv = eval_args () in
          match t.extern_slots.(slot) with
          | Some fn -> finish_call t frame r name (fn t (Array.to_list argv))
          | None -> (
              match Hashtbl.find_opt t.externs name with
              | Some fn ->
                  t.extern_slots.(slot) <- Some fn;
                  finish_call t frame r name (fn t (Array.to_list argv))
              | None -> unknown_function name))
      | L.Lindirect o -> (
          let addr = leval_int t frame o in
          match Hashtbl.find_opt t.addr_fun addr with
          | None -> raise (Mem.Fault (Mem.Unmapped addr))
          | Some name -> (
              let argv = eval_args () in
              match Hashtbl.find_opt t.lprog.L.funcs name with
              | Some lf -> finish_call t frame r name (exec_lfunc t lf argv)
              | None -> (
                  match Hashtbl.find_opt t.externs name with
                  | Some fn -> finish_call t frame r name (fn t (Array.to_list argv))
                  | None -> unknown_function name))))
  | L.Lpoison e -> raise e
  (* Fused superinstructions: replay the exact effect sequence of their
     two-instruction originals (gep cost, address-register write, access
     cost, access), so cost, faults and register contents are identical. *)
  | L.Lload_idx (r, k, rp, esz, p, i) -> (
      add_cost t Cost.gep;
      let base = leval_int t frame p in
      let idx = leval_int t frame i in
      let addr = Int64.add base (Int64.mul idx (Int64.of_int esz)) in
      set_int frame rp addr;
      add_cost t (Cost.load + Cost.heap_pressure (Allocator.live_bytes t.alloc));
      match k with
      | L.Kint n -> set_int frame r (Mem.read_int t.mem addr n)
      | L.Kfloat ->
          Bytes.unsafe_set frame.tags r '\001';
          reg_set frame.bits (r lsl 3) (Mem.read_int t.mem addr 8)
      | L.Kbad -> raise (Vm_error "load of non-scalar"))
  | L.Lload_fld (r, k, rp, off, p) -> (
      add_cost t Cost.gep;
      let addr = Int64.add (leval_int t frame p) (Int64.of_int off) in
      set_int frame rp addr;
      add_cost t (Cost.load + Cost.heap_pressure (Allocator.live_bytes t.alloc));
      match k with
      | L.Kint n -> set_int frame r (Mem.read_int t.mem addr n)
      | L.Kfloat ->
          Bytes.unsafe_set frame.tags r '\001';
          reg_set frame.bits (r lsl 3) (Mem.read_int t.mem addr 8)
      | L.Kbad -> raise (Vm_error "load of non-scalar"))
  | L.Lstore_idx (k, v, rp, esz, p, i) ->
      add_cost t Cost.gep;
      let base = leval_int t frame p in
      let idx = leval_int t frame i in
      let addr = Int64.add base (Int64.mul idx (Int64.of_int esz)) in
      set_int frame rp addr;
      exec_store_at t frame k v addr
  | L.Lstore_fld (k, v, rp, off, p) ->
      add_cost t Cost.gep;
      let addr = Int64.add (leval_int t frame p) (Int64.of_int off) in
      set_int frame rp addr;
      exec_store_at t frame k v addr

(* the store half of [Lstore]/[Lstore_idx]/[Lstore_fld]: cost, trace
   event, value evaluation and the write, in the original order *)
and exec_store_at t frame k (v : L.lop) addr =
  add_cost t (Cost.store + Cost.heap_pressure (Allocator.live_bytes t.alloc));
  (match t.trace with
  | Some s ->
      Trace.emit_store s ~cost:(!(t.cost)) ~addr
        ~bytes:(match k with L.Kint n -> n | L.Kfloat -> 8 | L.Kbad -> 0)
  | None -> ());
  match k with
  | L.Kint n -> (
      match v with
      | L.Lreg s ->
          if Bytes.unsafe_get frame.tags s <> '\000' then
            raise (Vm_error "store: float value into int slot");
          Mem.write_int t.mem addr n (reg_get frame.bits (s lsl 3))
      | L.Lconst (I y) -> Mem.write_int t.mem addr n y
      | L.Lconst (F _) -> raise (Vm_error "store: float value into int slot")
      | L.Lglobal g -> Mem.write_int t.mem addr n (global_address t g)
      | L.Lfun_name f -> Mem.write_int t.mem addr n (fun_address t f))
  | L.Kfloat ->
      let bits =
        match v with
        | L.Lreg s -> reg_get frame.bits (s lsl 3)
        | L.Lconst (I y) -> y
        | L.Lconst (F x) -> Int64.bits_of_float x
        | L.Lglobal g -> global_address t g
        | L.Lfun_name f -> fun_address t f
      in
      Mem.write_int t.mem addr 8 bits
  | L.Kbad ->
      ignore (leval t frame v);
      raise (Vm_error "store of non-scalar")

and finish_call _t frame r name result =
  match (r, result) with
  | Some r, Some v -> set_value frame r v
  | Some _, None ->
      raise (Vm_error (Printf.sprintf "%s returned void, result expected" name))
  | None, _ -> ()

(* ---- watched execution: the lowered engine plus divergence limits ----

   Runs the baseline program of a snapshot/fork group.  Identical effect
   sequence to [exec_lfunc]/[exec_lblocks]/[exec_linst] — costs, traps,
   evaluation order — with two additions: a shadow stack of activation
   positions, and a per-block watch limit.  On first arrival at a limit
   position it captures the whole VM state as a {!snapshot} and unwinds
   with {!Watch_fired}.  Watched runs require [t.trace = None] (enforced
   by [run_watched]), so the trace arms are omitted. *)

and wexec_lfunc t w (lf : L.lfunc) (args : value array) =
  if t.call_depth >= max_call_depth then raise (Vm_error "stack overflow");
  t.call_depth <- t.call_depth + 1;
  let nparams = Array.length lf.L.lparams in
  if Array.length args < nparams then
    raise
      (Vm_error
         (Printf.sprintf "%s: missing argument %d" lf.L.lname
            (Array.length args)));
  let frame = make_lframe lf.L.lnregs t.sp in
  for i = 0 to nparams - 1 do
    set_value frame lf.L.lparams.(i) args.(i)
  done;
  if Array.length lf.L.lblocks = 0 then
    invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" lf.L.lname);
  let wf = { wf_fname = lf.L.lname; wf_bidx = 0; wf_inst = 0; wf_frame = frame } in
  w.w_stack <- wf :: w.w_stack;
  let result = wexec_lblocks t w lf frame wf in
  w.w_stack <- List.tl w.w_stack;
  t.sp <- frame.lentry_sp;
  t.call_depth <- t.call_depth - 1;
  result

and wexec_lblocks t w (lf : L.lfunc) frame wf =
  let blocks = lf.L.lblocks in
  let limit idx =
    match Hashtbl.find_opt w.w_merged lf.L.lname with
    | Some a when idx < Array.length a -> Array.unsafe_get a idx
    | _ -> max_int
  in
  let rec go idx =
    let (b : L.lblock) = blocks.(idx) in
    wf.wf_bidx <- idx;
    check_budget t;
    let insts = b.L.linsts in
    let n = Array.length insts in
    (* [lim] is cached across instructions and re-fetched only after a
       fire (the merged frontier shrinks as members resolve); [fire]
       guarantees the new limit at this block exceeds the fire position,
       so the loop always progresses *)
    let rec insts_from i lim =
      if i = lim then begin
        wf.wf_inst <- i;
        fire t w idx i;
        insts_from i (limit idx)
      end
      else if i < n then begin
        wf.wf_inst <- i;
        wexec_linst t w frame (Array.unsafe_get insts i);
        insts_from (i + 1) lim
      end
      else begin match b.L.lterm with
      | L.Lbr tgt ->
          add_cost t Cost.branch;
          go (resolve_target tgt)
      | L.Lcbr (c, t1, t2) ->
          add_cost t Cost.cond_branch;
          let v = leval_int t frame c in
          go (resolve_target (if not (Int64.equal v 0L) then t1 else t2))
      | L.Lcheck (c, t1, t2, _, _) ->
          add_cost t Cost.cond_branch;
          let v = leval_int t frame c in
          go (resolve_target (if not (Int64.equal v 0L) then t1 else t2))
      | L.Lcmpbr (r, c, w', a, bb, t1, t2) ->
          add_cost t Cost.cmp;
          let vb = leval_int t frame bb in
          let va = leval_int t frame a in
          let v = exec_icmp c w' va vb in
          set_int frame r v;
          add_cost t Cost.cond_branch;
          go (resolve_target (if not (Int64.equal v 0L) then t1 else t2))
      | L.Lcmpcheck (r, c, w', a, bb, t1, t2, _, _) ->
          add_cost t Cost.cmp;
          let vb = leval_int t frame bb in
          let va = leval_int t frame a in
          let v = exec_icmp c w' va vb in
          set_int frame r v;
          add_cost t Cost.cond_branch;
          go (resolve_target (if not (Int64.equal v 0L) then t1 else t2))
      | L.Lret o ->
          add_cost t Cost.ret;
          Option.map (leval t frame) o
      | L.Lunreachable msg -> raise (Vm_error msg)
      end
    in
    insts_from 0 (limit idx)
  in
  go 0

and wexec_linst t w frame (inst : L.linst) =
  match inst with
  | L.Lcall (r, callee, args, cost) -> (
      add_cost t cost;
      let eval_args () =
        let n = Array.length args in
        let argv = Array.make n (I 0L) in
        for i = 0 to n - 1 do
          argv.(i) <- leval t frame args.(i)
        done;
        argv
      in
      (* a fire inside an extern (via [call_function] re-entry) cannot be
         resumed — count the nesting so [fire] can refuse *)
      let extern_call fn argv =
        w.w_extern <- w.w_extern + 1;
        Fun.protect
          ~finally:(fun () -> w.w_extern <- w.w_extern - 1)
          (fun () -> fn t (Array.to_list argv))
      in
      match callee with
      | L.Lfun lf -> finish_call t frame r lf.L.lname (wexec_lfunc t w lf (eval_args ()))
      | L.Lextern (slot, name) -> (
          let argv = eval_args () in
          match t.extern_slots.(slot) with
          | Some fn -> finish_call t frame r name (extern_call fn argv)
          | None -> (
              match Hashtbl.find_opt t.externs name with
              | Some fn ->
                  t.extern_slots.(slot) <- Some fn;
                  finish_call t frame r name (extern_call fn argv)
              | None -> unknown_function name))
      | L.Lindirect o -> (
          let addr = leval_int t frame o in
          match Hashtbl.find_opt t.addr_fun addr with
          | None -> raise (Mem.Fault (Mem.Unmapped addr))
          | Some name -> (
              let argv = eval_args () in
              match Hashtbl.find_opt t.lprog.L.funcs name with
              | Some lf -> finish_call t frame r name (wexec_lfunc t w lf argv)
              | None -> (
                  match Hashtbl.find_opt t.externs name with
                  | Some fn -> finish_call t frame r name (extern_call fn argv)
                  | None -> unknown_function name))))
  | inst -> exec_linst t frame inst

(* Capture everything a fork needs.  All copies are O(tables + frames):
   page contents stay shared copy-on-write. *)
and capture t w =
  let frames =
    List.rev_map
      (fun wf ->
        {
          sf_fname = wf.wf_fname;
          sf_bidx = wf.wf_bidx;
          sf_inst = wf.wf_inst;
          sf_bits = Bytes.copy wf.wf_frame.bits;
          sf_tags = Bytes.copy wf.wf_frame.tags;
          sf_entry_sp = wf.wf_frame.lentry_sp;
        })
      w.w_stack
  in
  let funaddr =
    Hashtbl.fold (fun name a acc -> (name, a) :: acc) t.fun_addr []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let mem_f = Mem.freeze t.mem in
  let alloc_f = Allocator.freeze t.alloc in
  let out = Buffer.contents t.out in
  (* combined content hash: equal hashes imply forks resume from equal
     states; deterministic across processes for cache federation *)
  let h = ref (Mem.frozen_hash mem_f) in
  let word x = h := Int64.mul (Int64.logxor !h x) 0x100000001B3L in
  let str s = String.iter (fun c -> word (Int64.of_int (Char.code c))) s in
  word (Allocator.frozen_hash alloc_f);
  word (Rng.state t.rng);
  word t.sp;
  word (Int64.of_int !(t.cost));
  word t.next_fun_addr;
  str out;
  List.iter
    (fun (n, a) ->
      str n;
      word a)
    funaddr;
  List.iter
    (fun sf ->
      str sf.sf_fname;
      word (Int64.of_int sf.sf_bidx);
      word (Int64.of_int sf.sf_inst);
      str (Bytes.to_string sf.sf_bits);
      str (Bytes.to_string sf.sf_tags);
      word sf.sf_entry_sp)
    frames;
  {
    sn_mem = mem_f;
    sn_alloc = alloc_f;
    sn_rng = Rng.state t.rng;
    sn_sp = t.sp;
    sn_cost = !(t.cost);
    sn_out = out;
    sn_funaddr = funaddr;
    sn_next_fun_addr = t.next_fun_addr;
    sn_frames = frames;
    sn_hash = !h;
  }

(* Execution is about to reach position [pos] of block [bidx] — the
   divergence frontier of at least one active member.  Resolve exactly
   the members whose frontier is here: capture one shared snapshot for
   them (or mark them unsharable when the position is unreachable for a
   fork — inside an extern callback such as the qsort comparator), then
   rebuild the merged frontier so the baseline keeps running for the
   members that still need it.  Raises {!Watch_done} once nobody does. *)
and fire t w bidx pos =
  let fname = (List.hd w.w_stack).wf_fname in
  let active m = m.wm_snap = None && not m.wm_unsharable in
  let here m =
    active m
    && (match Hashtbl.find_opt m.wm_limits fname with
       | Some a when bidx < Array.length a -> a.(bidx) = pos
       | _ -> false)
  in
  let snap =
    if w.w_extern > 0 || t.fi_first_cost <> None then None
    else Some (capture t w)
  in
  Array.iter
    (fun m ->
      if here m then begin
        (match snap with
        | Some sn -> m.wm_snap <- Some sn
        | None -> m.wm_unsharable <- true);
        w.w_active <- w.w_active - 1
      end)
    w.w_members;
  if w.w_active <= 0 then raise Watch_done;
  let merged = Hashtbl.create 16 in
  Array.iter (fun m -> if active m then L.merge_limits merged m.wm_limits) w.w_members;
  w.w_merged <- merged

(* ---- reference engine: the original tree-walking interpreter ---- *)

and exec_func t (f : Func.t) args =
  if t.call_depth >= max_call_depth then raise (Vm_error "stack overflow");
  t.call_depth <- t.call_depth + 1;
  let frame = { regs = Array.make f.next_reg (I 0xDEADBEEFL); entry_sp = t.sp } in
  (* bind arguments by walking params and args together (indexing the
     argument list per param was quadratic in arity); a short argument
     list fails at the first missing index, as before *)
  let rec bind i params args =
    match (params, args) with
    | [], _ -> ()
    | (r, _) :: params', v :: args' ->
        frame.regs.(r) <- v;
        bind (i + 1) params' args'
    | _ :: _, [] ->
        raise (Vm_error (Printf.sprintf "%s: missing argument %d" f.name i))
  in
  bind 0 f.params args;
  (match t.trace with
  | Some s -> Trace.emit_call_enter s ~cost:(!(t.cost)) ~fname:f.name
  | None -> ());
  let result = exec_blocks t f frame in
  (match t.trace with
  | Some s -> Trace.emit_call_exit s ~cost:(!(t.cost)) ~fname:f.name
  | None -> ());
  t.sp <- frame.entry_sp;
  t.call_depth <- t.call_depth - 1;
  result

and exec_blocks t f frame =
  let rec run (b : Func.block) =
    check_budget t;
    (match t.trace with
    | Some s -> Trace.sample_block s ~cost:(!(t.cost)) ~fname:f.Func.name ~blk:(-1)
    | None -> ());
    List.iter (exec_inst t f frame) b.insts;
    match b.term with
    | Br l ->
        add_cost t Cost.branch;
        run (Func.find_block f l)
    | Cbr (c, l1, l2) ->
        add_cost t Cost.cond_branch;
        let v = as_int (eval t frame c) in
        run (Func.find_block f (if not (Int64.equal v 0L) then l1 else l2))
    | Ret o ->
        add_cost t Cost.ret;
        Option.map (eval t frame) o
    | Unreachable -> raise (Vm_error (f.name ^ ": executed unreachable"))
  in
  run (Func.entry f)

and eval t frame = function
  | Reg r -> frame.regs.(r)
  | Cint (w, v) -> I (truncate_to w v)
  | Cfloat x -> F x
  | Null _ -> I 0L
  | Global g -> I (global_address t g)
  | Fun_addr f -> I (fun_address t f)

and exec_inst t f frame inst =
  let ev o = eval t frame o in
  let set r v = frame.regs.(r) <- v in
  match inst with
  | Malloc (r, ty, n) ->
      let count = Int64.to_int (as_int (ev n)) in
      if count < 0 then raise (Vm_error "malloc: negative count");
      let bytes = count * Layout.size_of t.prog.tenv ty in
      add_cost t (Cost.malloc_cost bytes);
      set r (I (Allocator.malloc t.alloc bytes))
  | Alloca (r, ty, n) ->
      let count = Int64.to_int (as_int (ev n)) in
      let bytes = max 1 (count * Layout.size_of t.prog.tenv ty) in
      add_cost t (Cost.alloca_cost bytes);
      let algn = Layout.align_of t.prog.tenv ty in
      let addr = Int64.of_int (Layout.round_up (Int64.to_int t.sp) (max 8 algn)) in
      Mem.map_range t.mem addr bytes Mem.Fill_garbage;
      t.sp <- Int64.add addr (Int64.of_int bytes);
      set r (I addr)
  | Free p ->
      add_cost t Cost.free_cost;
      let addr = as_int (ev p) in
      if not (Int64.equal addr 0L) then Allocator.free t.alloc addr
  | Load (r, ty, p) ->
      add_cost t (Cost.load + Cost.heap_pressure (Allocator.live_bytes t.alloc));
      let addr = as_int (ev p) in
      set r (load_scalar t ty addr)
  | Store (ty, v, p) ->
      add_cost t (Cost.store + Cost.heap_pressure (Allocator.live_bytes t.alloc));
      let addr = as_int (ev p) in
      (match t.trace with
      | Some s ->
          Trace.emit_store s ~cost:(!(t.cost)) ~addr
            ~bytes:(Layout.size_of t.prog.tenv ty)
      | None -> ());
      store_scalar t ty addr (ev v)
  | Gep_field (r, sname, p, i) ->
      add_cost t Cost.gep;
      let base = as_int (ev p) in
      let off = Layout.field_offset t.prog.tenv sname i in
      set r (I (Int64.add base (Int64.of_int off)))
  | Gep_index (r, ety, p, i) ->
      add_cost t Cost.gep;
      let base = as_int (ev p) in
      let idx = sign_extend W64 (as_int (ev i)) in
      let esz = Int64.of_int (Layout.size_of t.prog.tenv ety) in
      set r (I (Int64.add base (Int64.mul idx esz)))
  | Bitcast (r, _, p) ->
      add_cost t Cost.cast;
      set r (ev p)
  | Ptr_to_int (r, p) ->
      add_cost t Cost.cast;
      set r (ev p)
  | Int_to_ptr (r, _, v) ->
      add_cost t Cost.cast;
      set r (ev v)
  | Binop (r, op, w, a, b) ->
      add_cost t Cost.alu;
      set r (I (exec_binop op w (as_int (ev a)) (as_int (ev b))))
  | Fbinop (r, op, a, b) ->
      add_cost t Cost.falu;
      let x = as_float (ev a) and y = as_float (ev b) in
      let v =
        match op with
        | Fadd -> x +. y
        | Fsub -> x -. y
        | Fmul -> x *. y
        | Fdiv -> x /. y
      in
      set r (F v)
  | Icmp (r, c, w, a, b) ->
      add_cost t Cost.cmp;
      set r (I (exec_icmp c w (as_int (ev a)) (as_int (ev b))))
  | Fcmp (r, c, a, b) ->
      add_cost t Cost.cmp;
      set r (I (exec_fcmp c (as_float (ev a)) (as_float (ev b))))
  | Int_cast (r, w, signed, v) ->
      add_cost t Cost.cast;
      let x = as_int (ev v) in
      (* source width unknown here; values are kept zero-extended to their
         own width, so sign extension needs the source width — recover it
         from the operand's static type. *)
      let src_w =
        match Prog.operand_ty t.prog f v with
        | Int w -> w
        | _ -> W64
      in
      let x = if signed then sign_extend src_w x else x in
      set r (I (truncate_to w x))
  | F_to_i (r, w, v) ->
      add_cost t Cost.cast;
      let x = as_float (ev v) in
      set r (I (truncate_to w (Int64.of_float x)))
  | I_to_f (r, _, v) ->
      add_cost t Cost.cast;
      let x = as_int (ev v) in
      let src_w =
        match Prog.operand_ty t.prog f v with Int w -> w | _ -> W64
      in
      set r (F (Int64.to_float (sign_extend src_w x)))
  | Select (r, _, c, a, b) ->
      add_cost t Cost.select;
      let cv = as_int (ev c) in
      set r (if not (Int64.equal cv 0L) then ev a else ev b)
  | Call (r, callee, args) ->
      add_cost t (Cost.call_base + (Cost.call_per_arg * List.length args));
      let name =
        match callee with
        | Direct n -> n
        | Indirect o -> (
            let addr = as_int (ev o) in
            match Hashtbl.find_opt t.addr_fun addr with
            | Some n -> n
            | None -> raise (Mem.Fault (Mem.Unmapped addr)))
      in
      let result = call_function t name (List.map ev args) in
      (match (r, result) with
      | Some r, Some v -> set r v
      | Some _, None ->
          raise (Vm_error (Printf.sprintf "%s returned void, result expected" name))
      | None, _ -> ())

(* ------------------------------------------------------------------ *)
(* Compiled-tier instantiation                                         *)
(* ------------------------------------------------------------------ *)

(* The runtime view {!Compile} programs against.  Sits below the
   recursive knot because compiled calls re-enter it ([exec_lfunc]), and
   above [tier_enter] because the knot promotes through that ref — the
   assignment right after [Tier] ties the cycle. *)
module Tier_rt = struct
  type nonrec t = t

  let cost t = t.cost
  let budget t = t.budget
  let mem t = t.mem
  let alloc t = t.alloc
  let sp t = t.sp
  let set_sp t v = t.sp <- v
  let global_address = global_address
  let fun_address = fun_address

  let fault_active t =
    match t.fi_first_cost with None -> false | Some _ -> true

  let call_lfun t lf args = exec_lfunc t lf args

  (* the [Lextern] slot protocol of [exec_linst]: slot cache, extern
     table with cache fill, unknown-function error — in that order *)
  let call_extern_slot t slot name argv =
    match t.extern_slots.(slot) with
    | Some fn -> fn t (Array.to_list argv)
    | None -> (
        match Hashtbl.find_opt t.externs name with
        | Some fn ->
            t.extern_slots.(slot) <- Some fn;
            fn t (Array.to_list argv)
        | None -> unknown_function name)

  let indirect_name t addr =
    match Hashtbl.find_opt t.addr_fun addr with
    | Some name -> name
    | None -> raise (Mem.Fault (Mem.Unmapped addr))

  let call_named t name argv =
    match Hashtbl.find_opt t.lprog.L.funcs name with
    | Some lf -> exec_lfunc t lf argv
    | None -> (
        match Hashtbl.find_opt t.externs name with
        | Some fn -> fn t (Array.to_list argv)
        | None -> unknown_function name)
end

module Tier = Compile.Make (Tier_rt)

let () = tier_enter := Tier.enter

(** Cumulative (process-wide) compiled-tier telemetry:
    (functions promoted, deoptimizations). *)
let tier_stats () = (Compile.n_promotions (), Compile.n_deopts ())

(* ------------------------------------------------------------------ *)
(* Top-level driver                                                    *)
(* ------------------------------------------------------------------ *)

(** Set up argv strings in simulated memory; returns (argc, argv). *)
let setup_argv t args =
  let n = List.length args in
  let argv = Allocator.malloc t.alloc (max 8 (8 * n)) in
  List.iteri
    (fun i s ->
      let a = Allocator.malloc t.alloc (String.length s + 1) in
      String.iteri
        (fun j c -> Mem.write_u8 t.mem (Int64.add a (Int64.of_int j)) (Char.code c))
        s;
      Mem.write_u8 t.mem (Int64.add a (Int64.of_int (String.length s))) 0;
      Mem.write_int t.mem (Int64.add argv (Int64.of_int (8 * i))) 8 a)
    args;
  (I (Int64.of_int n), I argv)

let finish_run t outcome =
  {
    Outcome.outcome;
    cost = Int64.of_int !(t.cost);
    output = Buffer.contents t.out;
    peak_heap_bytes = (Allocator.stats t.alloc).peak_bytes;
    mapped_pages = t.mem.mapped_pages;
    fi_first_cost = Option.map Int64.of_int t.fi_first_cost;
  }

let classify_run t body =
  try finish_run t (body ()) with
  | Exit_program 0 -> finish_run t Outcome.Normal
  | Exit_program n -> finish_run t (Outcome.App_exit n)
  | Dpmr_detected msg -> finish_run t (Outcome.Dpmr_detect msg)
  | Timeout_exceeded -> finish_run t Outcome.Timeout
  | Mem.Fault flt -> finish_run t (Outcome.Crash (Mem.fault_to_string flt))
  | Vm_error msg -> finish_run t (Outcome.Crash msg)
  | Stack_overflow -> finish_run t (Outcome.Crash "host stack overflow")

let classify_exit r =
  let code = match r with Some (I v) -> Int64.to_int v | _ -> 0 in
  if code = 0 then Outcome.Normal else Outcome.App_exit code

(** [run]'s entry protocol on the lowered (and, when hot, compiled)
    engine. *)
let run_lowered ?(entry = "main") ?(args = [ "prog" ]) t =
  t.use_lowered <- true;
  classify_run t (fun () ->
      let lf =
        match Hashtbl.find_opt t.lprog.L.funcs entry with
        | Some lf -> lf
        | None -> invalid_arg (Printf.sprintf "Prog.func: undefined %S" entry)
      in
      let argv_vals =
        match Array.length lf.L.lparams with
        | 0 -> [||]
        | 2 ->
            let argc, argv = setup_argv t args in
            [| argc; argv |]
        | _ -> raise (Vm_error (entry ^ ": entry point must take () or (argc, argv)"))
      in
      classify_exit (exec_lfunc t lf argv_vals))

(** Same entry protocol on the reference tree-walking engine. *)
let run_reference ?(entry = "main") ?(args = [ "prog" ]) t =
  t.use_lowered <- false;
  classify_run t (fun () ->
      let f = Prog.func t.prog entry in
      let argv_vals =
        match f.params with
        | [] -> []
        | [ _; _ ] ->
            let argc, argv = setup_argv t args in
            [ argc; argv ]
        | _ -> raise (Vm_error (entry ^ ": entry point must take () or (argc, argv)"))
      in
      classify_exit (exec_func t f argv_vals))

(** Run [main] (or a named entry point) to completion and classify,
    on the engine the tier mode selects: the lowered/compiled pair by
    default, the tree-walker under {!Tier_ref}. *)
let run ?(entry = "main") ?(args = [ "prog" ]) t =
  match !tier_mode_ref with
  | Tier_ref -> run_reference ~entry ~args t
  | Tier_auto | Tier_lowered | Tier_compiled -> run_lowered ~entry ~args t

(* ------------------------------------------------------------------ *)
(* Snapshot / fork drivers                                             *)
(* ------------------------------------------------------------------ *)

let snapshot_hash s = s.sn_hash
let snapshot_cost s = Int64.of_int s.sn_cost
let snapshot_pages s = Mem.frozen_pages s.sn_mem

(** Per-member resolution of a watched baseline run. *)
type watch_result =
  | Wsnap of snapshot
      (** state captured copy-on-write at the member's divergence
          frontier; {!resume} from it *)
  | Wshared of Outcome.run
      (** the baseline ended (normally, by trap, or on budget) without
          ever reaching this member's frontier, so its whole run — and
          this outcome — is bit-identical to the member's own *)
  | Wzero
      (** frontier reached where a fork cannot resume (extern callback
          nesting): run this member from zero *)

(** Run the entry point watched for a whole group: bit-identical to
    {!run}, except that on the first arrival at each member's divergence
    frontier (its {!Lower.diff_limits} table) the VM state is captured
    copy-on-write for that member.  The run ends early once every member
    is resolved.  Raises {!Watch_infeasible} when watching is impossible
    on this VM (tracing active). *)
let run_watched ?(entry = "main") ?(args = [ "prog" ]) t limitss =
  (* infeasible under tracing (per-event fidelity) and under a forced
     reference tier (watch limits are lowered-block positions) *)
  if t.trace <> None || !tier_mode_ref = Tier_ref then raise Watch_infeasible;
  t.use_lowered <- true;
  let members =
    Array.map
      (fun lims -> { wm_limits = lims; wm_snap = None; wm_unsharable = false })
      limitss
  in
  let merged = Hashtbl.create 16 in
  Array.iter (fun m -> L.merge_limits merged m.wm_limits) members;
  let w =
    {
      w_members = members;
      w_merged = merged;
      w_active = Array.length members;
      w_stack = [];
      w_extern = 0;
    }
  in
  let finish shared =
    Array.map
      (fun m ->
        match m.wm_snap with
        | Some sn -> Wsnap sn
        | None -> (
            if m.wm_unsharable then Wzero
            else match shared with Some r -> Wshared r | None -> Wzero))
      members
  in
  Domain.DLS.set wctx_key (Some w);
  match
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set wctx_key None)
      (fun () ->
        classify_run t (fun () ->
            let lf =
              match Hashtbl.find_opt t.lprog.L.funcs entry with
              | Some lf -> lf
              | None -> invalid_arg (Printf.sprintf "Prog.func: undefined %S" entry)
            in
            let argv_vals =
              match Array.length lf.L.lparams with
              | 0 -> [||]
              | 2 ->
                  let argc, argv = setup_argv t args in
                  [| argc; argv |]
              | _ ->
                  raise (Vm_error (entry ^ ": entry point must take () or (argc, argv)"))
            in
            classify_exit (wexec_lfunc t w lf argv_vals)))
  with
  | r -> finish (Some r)
  | exception Watch_done -> finish None

(* Rebuild one activation record from its capture.  The fork's function
   may have more registers than the baseline's (fault injection appends
   fresh ones); the extra registers were untouched at the capture point,
   so [make_lframe]'s poison is exactly their from-zero contents. *)
let remake_lframe nregs (sf : snap_frame) =
  let frame = make_lframe nregs sf.sf_entry_sp in
  let nb = min (Bytes.length sf.sf_bits) (Bytes.length frame.bits) in
  Bytes.blit sf.sf_bits 0 frame.bits 0 nb;
  let nt = min (Bytes.length sf.sf_tags) (Bytes.length frame.tags) in
  Bytes.blit sf.sf_tags 0 frame.tags 0 nt;
  frame

(* Same, through an alpha remap: baseline register [r] lands in member
   register [rm_regs.(r)].  Unmapped member registers keep their poison
   — at the capture point the baseline had only written registers whose
   defs the matcher paired, so poison is exactly their from-zero
   contents. *)
let remake_lframe_mapped nregs (sf : snap_frame) (rm : L.remap) =
  let frame = make_lframe nregs sf.sf_entry_sp in
  let n = min (Array.length rm.L.rm_regs) (Bytes.length sf.sf_tags) in
  for r = 0 to n - 1 do
    let r2 = rm.L.rm_regs.(r) in
    if r2 >= 0 && r2 < nregs then begin
      Bytes.blit sf.sf_bits (r lsl 3) frame.bits (r2 lsl 3) 8;
      Bytes.set frame.tags r2 (Bytes.get sf.sf_tags r)
    end
  done;
  frame

let rec resume_frames t remap frames =
  match frames with
  | [] -> raise (Vm_error "snapshot resume: empty frame stack")
  | sf :: rest -> (
      let lf =
        match Hashtbl.find_opt t.lprog.L.funcs sf.sf_fname with
        | Some lf -> lf
        | None -> raise (Vm_error (Printf.sprintf "snapshot resume: no function %S" sf.sf_fname))
      in
      if t.call_depth >= max_call_depth then raise (Vm_error "stack overflow");
      t.call_depth <- t.call_depth + 1;
      let rm = remap sf.sf_fname in
      (* captured positions sit below the divergence frontier, so their
         blocks were paired by the matcher; an unmapped block means the
         snapshot and the remap disagree *)
      let bidx =
        match rm with
        | None -> sf.sf_bidx
        | Some r ->
            if
              sf.sf_bidx < Array.length r.L.rm_blocks
              && r.L.rm_blocks.(sf.sf_bidx) >= 0
            then r.L.rm_blocks.(sf.sf_bidx)
            else raise (Vm_error "snapshot resume: unmapped block")
      in
      let frame =
        match rm with
        | None -> remake_lframe lf.L.lnregs sf
        | Some r -> remake_lframe_mapped lf.L.lnregs sf r
      in
      let result =
        match rest with
        | [] ->
            (* innermost activation: continue at the captured position *)
            exec_lblocks_at t lf frame bidx sf.sf_inst
        | _ :: _ ->
            (* an [Lcall] was in flight at the captured position: finish
               it from the inner frames, then continue after it *)
            let b = lf.L.lblocks.(bidx) in
            if sf.sf_inst >= Array.length b.L.linsts then
              raise (Vm_error "snapshot resume: frame mismatch");
            (match b.L.linsts.(sf.sf_inst) with
            | L.Lcall (r, callee, _, _) ->
                let name =
                  match callee with
                  | L.Lfun f -> f.L.lname
                  | L.Lextern (_, n) -> n
                  | L.Lindirect _ -> (List.hd rest).sf_fname
                in
                finish_call t frame r name (resume_frames t remap rest)
            | _ -> raise (Vm_error "snapshot resume: frame mismatch"));
            exec_lblocks_at t lf frame bidx (sf.sf_inst + 1)
      in
      t.sp <- frame.lentry_sp;
      t.call_depth <- t.call_depth - 1;
      result)

(** Fork: replace [t]'s state (a freshly created VM for the fork's
    program, externs already registered) with the snapshot's, then run to
    completion.  Bit-identical to running the fork's program from zero
    with the same seed — the prefix up to the capture point executed the
    same instruction stream (modulo [remap]'s renaming, invisible to
    behaviour) on the same state. *)
let resume ?(remap = fun _ -> None) t snapshot =
  if t.trace <> None then raise Watch_infeasible;
  t.use_lowered <- true;
  t.mem <- Mem.thaw snapshot.sn_mem;
  t.alloc <- Allocator.thaw t.mem snapshot.sn_alloc;
  Rng.set_state t.rng snapshot.sn_rng;
  t.sp <- snapshot.sn_sp;
  t.cost := snapshot.sn_cost;
  Buffer.clear t.out;
  Buffer.add_string t.out snapshot.sn_out;
  Hashtbl.reset t.fun_addr;
  Hashtbl.reset t.addr_fun;
  List.iter
    (fun (name, a) ->
      Hashtbl.replace t.fun_addr name a;
      Hashtbl.replace t.addr_fun a name)
    snapshot.sn_funaddr;
  t.next_fun_addr <- snapshot.sn_next_fun_addr;
  t.fi_first_cost <- None;
  t.call_depth <- 0;
  classify_run t (fun () -> classify_exit (resume_frames t remap snapshot.sn_frames))
