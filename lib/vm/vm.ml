(** The interpreter: executes an IR program against the simulated memory
    subsystem, charging the {!Cost} model, dispatching external functions,
    and classifying the run per {!Outcome}. *)

open Dpmr_ir
open Dpmr_memsim
open Types
open Inst

type value = I of int64 | F of float

exception Exit_program of int
exception Dpmr_detected of string
exception Timeout_exceeded
exception Vm_error of string

type t = {
  prog : Prog.t;
  mem : Mem.t;
  alloc : Allocator.t;
  mutable sp : int64;
  global_addr : (string, int64) Hashtbl.t;
  fun_addr : (string, int64) Hashtbl.t;
  addr_fun : (int64, string) Hashtbl.t;
  mutable next_fun_addr : int64;
  out : Buffer.t;
  mutable cost : int64;
  mutable budget : int64;  (** raise {!Timeout_exceeded} when cost exceeds *)
  rng : Rng.t;
  externs : (string, extern) Hashtbl.t;
  mutable fi_first_cost : int64 option;
  mutable call_depth : int;
}

and extern = t -> value list -> value option

let add_cost t c = t.cost <- Int64.add t.cost (Int64.of_int c)

let check_budget t = if t.cost > t.budget then raise Timeout_exceeded

let as_int = function I v -> v | F _ -> raise (Vm_error "expected int/pointer value")
let as_float = function F v -> v | I _ -> raise (Vm_error "expected float value")

let truncate_to w v =
  match w with
  | W8 -> Int64.logand v 0xFFL
  | W16 -> Int64.logand v 0xFFFFL
  | W32 -> Int64.logand v 0xFFFFFFFFL
  | W64 -> v

let sign_extend w v =
  match w with
  | W8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | W16 -> Int64.shift_right (Int64.shift_left v 48) 48
  | W32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | W64 -> v

(* ------------------------------------------------------------------ *)
(* Construction and program loading                                    *)
(* ------------------------------------------------------------------ *)

let fun_address t name =
  match Hashtbl.find_opt t.fun_addr name with
  | Some a -> a
  | None ->
      let a = t.next_fun_addr in
      t.next_fun_addr <- Int64.add a 16L;
      Hashtbl.replace t.fun_addr name a;
      Hashtbl.replace t.addr_fun a name;
      a

let global_address t name =
  match Hashtbl.find_opt t.global_addr name with
  | Some a -> a
  | None -> raise (Vm_error (Printf.sprintf "no address for global %S" name))

(* Write a structural initializer at [addr]. *)
let rec write_ginit t addr ty (g : Prog.ginit) =
  let tenv = t.prog.tenv in
  match (g, ty) with
  | Prog.Gzero, _ -> Mem.fill t.mem addr (Layout.size_of tenv ty) 0
  | Prog.Gint v, Int w -> Mem.write_int t.mem addr (bytes_of_width w) v
  | Prog.Gfloat x, Float -> Mem.write_f64 t.mem addr x
  | Prog.Gptr_null, Ptr _ -> Mem.write_int t.mem addr 8 0L
  | Prog.Gptr_global gname, Ptr _ -> Mem.write_int t.mem addr 8 (global_address t gname)
  | Prog.Gptr_fun fname, Ptr _ -> Mem.write_int t.mem addr 8 (fun_address t fname)
  | Prog.Gstring s, Arr (Int W8, n) ->
      let len = min (String.length s) (n - 1) in
      for i = 0 to len - 1 do
        Mem.write_u8 t.mem (Int64.add addr (Int64.of_int i)) (Char.code s.[i])
      done;
      Mem.fill t.mem (Int64.add addr (Int64.of_int len)) (n - len) 0
  | Prog.Gagg gs, Arr (e, n) ->
      let esz = Layout.size_of tenv e in
      List.iteri
        (fun i gi ->
          if i < n then write_ginit t (Int64.add addr (Int64.of_int (i * esz))) e gi)
        gs
  | Prog.Gagg gs, Struct sname ->
      let fields = Tenv.fields tenv sname in
      let offs = Layout.field_offsets tenv sname in
      List.iteri
        (fun i gi ->
          let fty = List.nth fields i and off = List.nth offs i in
          write_ginit t (Int64.add addr (Int64.of_int off)) fty gi)
        gs
  | _ ->
      raise
        (Vm_error
           (Fmt.str "bad global initializer for type %a" Types.pp ty))

let layout_globals t =
  let cursor = ref Mem.globals_base in
  (* first pass: assign addresses (initializers may reference any global) *)
  Prog.iter_globals t.prog (fun g ->
      let tenv = t.prog.tenv in
      let size = max 1 (Layout.size_of tenv g.gty) in
      let algn = Layout.align_of tenv g.gty in
      let addr =
        Int64.of_int (Layout.round_up (Int64.to_int !cursor) algn)
      in
      Mem.map_range t.mem addr size Mem.Fill_zero;
      Hashtbl.replace t.global_addr g.gname addr;
      cursor := Int64.add addr (Int64.of_int size));
  (* second pass: write initializers *)
  Prog.iter_globals t.prog (fun g ->
      write_ginit t (Hashtbl.find t.global_addr g.gname) g.gty g.ginit)

let create ?(seed = 42L) ?(budget = 2_000_000_000L) prog =
  let mem = Mem.create ~seed () in
  let t =
    {
      prog;
      mem;
      alloc = Allocator.create mem;
      sp = Mem.stack_base;
      global_addr = Hashtbl.create 32;
      fun_addr = Hashtbl.create 32;
      addr_fun = Hashtbl.create 32;
      next_fun_addr = 0x2000_0000L;
      out = Buffer.create 256;
      cost = 0L;
      budget;
      rng = Rng.create seed;
      externs = Hashtbl.create 64;
      fi_first_cost = None;
      call_depth = 0;
    }
  in
  layout_globals t;
  t

let register_extern t name fn = Hashtbl.replace t.externs name fn

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type frame = { regs : value array; entry_sp : int64 }

let eval t frame = function
  | Reg r -> frame.regs.(r)
  | Cint (w, v) -> I (truncate_to w v)
  | Cfloat x -> F x
  | Null _ -> I 0L
  | Global g -> I (global_address t g)
  | Fun_addr f -> I (fun_address t f)

let load_scalar t ty addr =
  match ty with
  | Float -> F (Mem.read_f64 t.mem addr)
  | Int w -> I (Mem.read_int t.mem addr (bytes_of_width w))
  | Ptr _ -> I (Mem.read_int t.mem addr 8)
  | _ -> raise (Vm_error "load of non-scalar")

let store_scalar t ty addr v =
  match (ty, v) with
  | Float, F x -> Mem.write_f64 t.mem addr x
  | Float, I bits -> Mem.write_f64 t.mem addr (Int64.float_of_bits bits)
  | Int w, I x -> Mem.write_int t.mem addr (bytes_of_width w) x
  | Ptr _, I x -> Mem.write_int t.mem addr 8 x
  | Int _, F _ | Ptr _, F _ -> raise (Vm_error "store: float value into int slot")
  | _ -> raise (Vm_error "store of non-scalar")

let exec_binop op w a b =
  let sa = sign_extend w a and sb = sign_extend w b in
  let r =
    match op with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Sdiv ->
        if Int64.equal sb 0L then raise (Vm_error "division by zero")
        else Int64.div sa sb
    | Srem ->
        if Int64.equal sb 0L then raise (Vm_error "division by zero")
        else Int64.rem sa sb
    | Udiv ->
        if Int64.equal b 0L then raise (Vm_error "division by zero")
        else Int64.unsigned_div a b
    | Urem ->
        if Int64.equal b 0L then raise (Vm_error "division by zero")
        else Int64.unsigned_rem a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
    | Lshr -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
    | Ashr -> Int64.shift_right sa (Int64.to_int (Int64.logand b 63L))
  in
  truncate_to w r

let exec_icmp c w a b =
  let sa = sign_extend w a and sb = sign_extend w b in
  let r =
    match c with
    | Ieq -> Int64.equal a b
    | Ine -> not (Int64.equal a b)
    | Islt -> Int64.compare sa sb < 0
    | Isle -> Int64.compare sa sb <= 0
    | Isgt -> Int64.compare sa sb > 0
    | Isge -> Int64.compare sa sb >= 0
    | Iult -> Int64.unsigned_compare a b < 0
    | Iule -> Int64.unsigned_compare a b <= 0
    | Iugt -> Int64.unsigned_compare a b > 0
    | Iuge -> Int64.unsigned_compare a b >= 0
  in
  if r then 1L else 0L

let exec_fcmp c a b =
  let r =
    match c with
    | Foeq -> a = b
    | Fone -> a <> b
    | Folt -> a < b
    | Fole -> a <= b
    | Fogt -> a > b
    | Foge -> a >= b
  in
  if r then 1L else 0L

let max_call_depth = 10_000

let rec call_function t name args =
  match Hashtbl.find_opt t.prog.funcs name with
  | Some f -> exec_func t f args
  | None -> (
      match Hashtbl.find_opt t.externs name with
      | Some fn -> fn t args
      | None -> raise (Vm_error (Printf.sprintf "call to unknown function %S" name)))

and exec_func t (f : Func.t) args =
  if t.call_depth >= max_call_depth then raise (Vm_error "stack overflow");
  t.call_depth <- t.call_depth + 1;
  let frame = { regs = Array.make f.next_reg (I 0xDEADBEEFL); entry_sp = t.sp } in
  List.iteri
    (fun i (r, _) ->
      match List.nth_opt args i with
      | Some v -> frame.regs.(r) <- v
      | None -> raise (Vm_error (Printf.sprintf "%s: missing argument %d" f.name i)))
    f.params;
  let result = exec_blocks t f frame in
  t.sp <- frame.entry_sp;
  t.call_depth <- t.call_depth - 1;
  result

and exec_blocks t f frame =
  let rec run (b : Func.block) =
    check_budget t;
    List.iter (exec_inst t f frame) b.insts;
    match b.term with
    | Br l ->
        add_cost t Cost.branch;
        run (Func.find_block f l)
    | Cbr (c, l1, l2) ->
        add_cost t Cost.cond_branch;
        let v = as_int (eval t frame c) in
        run (Func.find_block f (if not (Int64.equal v 0L) then l1 else l2))
    | Ret o ->
        add_cost t Cost.ret;
        Option.map (eval t frame) o
    | Unreachable -> raise (Vm_error (f.name ^ ": executed unreachable"))
  in
  run (Func.entry f)

and exec_inst t f frame inst =
  let ev o = eval t frame o in
  let set r v = frame.regs.(r) <- v in
  match inst with
  | Malloc (r, ty, n) ->
      let count = Int64.to_int (as_int (ev n)) in
      if count < 0 then raise (Vm_error "malloc: negative count");
      let bytes = count * Layout.size_of t.prog.tenv ty in
      add_cost t (Cost.malloc_cost bytes);
      set r (I (Allocator.malloc t.alloc bytes))
  | Alloca (r, ty, n) ->
      let count = Int64.to_int (as_int (ev n)) in
      let bytes = max 1 (count * Layout.size_of t.prog.tenv ty) in
      add_cost t (Cost.alloca_cost bytes);
      let algn = Layout.align_of t.prog.tenv ty in
      let addr = Int64.of_int (Layout.round_up (Int64.to_int t.sp) (max 8 algn)) in
      Mem.map_range t.mem addr bytes Mem.Fill_garbage;
      t.sp <- Int64.add addr (Int64.of_int bytes);
      set r (I addr)
  | Free p ->
      add_cost t Cost.free_cost;
      let addr = as_int (ev p) in
      if not (Int64.equal addr 0L) then Allocator.free t.alloc addr
  | Load (r, ty, p) ->
      add_cost t (Cost.load + Cost.heap_pressure (Allocator.stats t.alloc).live_bytes);
      let addr = as_int (ev p) in
      set r (load_scalar t ty addr)
  | Store (ty, v, p) ->
      add_cost t (Cost.store + Cost.heap_pressure (Allocator.stats t.alloc).live_bytes);
      let addr = as_int (ev p) in
      store_scalar t ty addr (ev v)
  | Gep_field (r, sname, p, i) ->
      add_cost t Cost.gep;
      let base = as_int (ev p) in
      let off = Layout.field_offset t.prog.tenv sname i in
      set r (I (Int64.add base (Int64.of_int off)))
  | Gep_index (r, ety, p, i) ->
      add_cost t Cost.gep;
      let base = as_int (ev p) in
      let idx = sign_extend W64 (as_int (ev i)) in
      let esz = Int64.of_int (Layout.size_of t.prog.tenv ety) in
      set r (I (Int64.add base (Int64.mul idx esz)))
  | Bitcast (r, _, p) ->
      add_cost t Cost.cast;
      set r (ev p)
  | Ptr_to_int (r, p) ->
      add_cost t Cost.cast;
      set r (ev p)
  | Int_to_ptr (r, _, v) ->
      add_cost t Cost.cast;
      set r (ev v)
  | Binop (r, op, w, a, b) ->
      add_cost t Cost.alu;
      set r (I (exec_binop op w (as_int (ev a)) (as_int (ev b))))
  | Fbinop (r, op, a, b) ->
      add_cost t Cost.falu;
      let x = as_float (ev a) and y = as_float (ev b) in
      let v =
        match op with
        | Fadd -> x +. y
        | Fsub -> x -. y
        | Fmul -> x *. y
        | Fdiv -> x /. y
      in
      set r (F v)
  | Icmp (r, c, w, a, b) ->
      add_cost t Cost.cmp;
      set r (I (exec_icmp c w (as_int (ev a)) (as_int (ev b))))
  | Fcmp (r, c, a, b) ->
      add_cost t Cost.cmp;
      set r (I (exec_fcmp c (as_float (ev a)) (as_float (ev b))))
  | Int_cast (r, w, signed, v) ->
      add_cost t Cost.cast;
      let x = as_int (ev v) in
      (* source width unknown here; values are kept zero-extended to their
         own width, so sign extension needs the source width — recover it
         from the operand's static type. *)
      let src_w =
        match Prog.operand_ty t.prog f v with
        | Int w -> w
        | _ -> W64
      in
      let x = if signed then sign_extend src_w x else x in
      set r (I (truncate_to w x))
  | F_to_i (r, w, v) ->
      add_cost t Cost.cast;
      let x = as_float (ev v) in
      set r (I (truncate_to w (Int64.of_float x)))
  | I_to_f (r, _, v) ->
      add_cost t Cost.cast;
      let x = as_int (ev v) in
      let src_w =
        match Prog.operand_ty t.prog f v with Int w -> w | _ -> W64
      in
      set r (F (Int64.to_float (sign_extend src_w x)))
  | Select (r, _, c, a, b) ->
      add_cost t Cost.select;
      let cv = as_int (ev c) in
      set r (if not (Int64.equal cv 0L) then ev a else ev b)
  | Call (r, callee, args) ->
      add_cost t (Cost.call_base + (Cost.call_per_arg * List.length args));
      let name =
        match callee with
        | Direct n -> n
        | Indirect o -> (
            let addr = as_int (ev o) in
            match Hashtbl.find_opt t.addr_fun addr with
            | Some n -> n
            | None -> raise (Mem.Fault (Mem.Unmapped addr)))
      in
      let result = call_function t name (List.map ev args) in
      (match (r, result) with
      | Some r, Some v -> set r v
      | Some _, None ->
          raise (Vm_error (Printf.sprintf "%s returned void, result expected" name))
      | None, _ -> ())

(* ------------------------------------------------------------------ *)
(* Top-level driver                                                    *)
(* ------------------------------------------------------------------ *)

(** Set up argv strings in simulated memory; returns (argc, argv). *)
let setup_argv t args =
  let n = List.length args in
  let argv = Allocator.malloc t.alloc (max 8 (8 * n)) in
  List.iteri
    (fun i s ->
      let a = Allocator.malloc t.alloc (String.length s + 1) in
      String.iteri
        (fun j c -> Mem.write_u8 t.mem (Int64.add a (Int64.of_int j)) (Char.code c))
        s;
      Mem.write_u8 t.mem (Int64.add a (Int64.of_int (String.length s))) 0;
      Mem.write_int t.mem (Int64.add argv (Int64.of_int (8 * i))) 8 a)
    args;
  (I (Int64.of_int n), I argv)

(** Run [main] (or a named entry point) to completion and classify. *)
let run ?(entry = "main") ?(args = [ "prog" ]) t =
  let finish outcome =
    {
      Outcome.outcome;
      cost = t.cost;
      output = Buffer.contents t.out;
      peak_heap_bytes = (Allocator.stats t.alloc).peak_bytes;
      mapped_pages = t.mem.mapped_pages;
      fi_first_cost = t.fi_first_cost;
    }
  in
  try
    let f = Prog.func t.prog entry in
    let argv_vals =
      match f.params with
      | [] -> []
      | [ _; _ ] ->
          let argc, argv = setup_argv t args in
          [ argc; argv ]
      | _ -> raise (Vm_error (entry ^ ": entry point must take () or (argc, argv)"))
    in
    let r = exec_func t f argv_vals in
    let code = match r with Some (I v) -> Int64.to_int v | _ -> 0 in
    finish (if code = 0 then Outcome.Normal else Outcome.App_exit code)
  with
  | Exit_program 0 -> finish Outcome.Normal
  | Exit_program n -> finish (Outcome.App_exit n)
  | Dpmr_detected msg -> finish (Outcome.Dpmr_detect msg)
  | Timeout_exceeded -> finish Outcome.Timeout
  | Mem.Fault flt -> finish (Outcome.Crash (Mem.fault_to_string flt))
  | Vm_error msg -> finish (Outcome.Crash msg)
  | Stack_overflow -> finish (Outcome.Crash "host stack overflow")
