(** Deterministic execution cost model.

    The paper's performance results compare instrumentation variants
    relative to a golden build on real hardware; we replace wall-clock
    time with cost units charged per executed instruction.  The constants
    encode the first-order effects the dissertation's analysis appeals
    to: loads/stores dominate and DPMR multiplies them; branches carry a
    misprediction-shaped surcharge (why temporal load-checking is slower
    than checking every load, §3.8); allocation cost grows with bytes
    touched; and a live-heap cache-pressure term taxes every access (why
    large pad-malloc variants are the most expensive diversity
    transforms, §3.7). *)

val load : int
val store : int
val gep : int
val alu : int
val falu : int
val cmp : int
val cast : int
val select : int
val branch : int
val cond_branch : int
val call_base : int
val call_per_arg : int
val ret : int

(** Fixed allocation path cost plus a per-touched-cache-line term. *)
val malloc_cost : int -> int

val free_cost : int
val alloca_cost : int -> int

(** Per-access surcharge for a given live heap size (one unit per
    32 KiB): the cache-pressure model. *)
val heap_pressure : int -> int

(** Tier-3 promotion threshold, in executed lowered blocks per function.
    Heuristic only: cost units charged are identical on every tier. *)
val tier_promote_blocks : int
