(** Execution substrate shared by the VM's interpreter tiers.

    {!Vm} historically owned the run-classification exceptions, the
    cooperative step-poll hook and the lowered engine's register file.
    The closure-compiled top tier ({!Compile}) executes the same frames
    and raises the same exceptions, but must sit {e below} {!Vm} in the
    module graph — [Vm] instantiates the compiler's runtime functor after
    its recursive execution knot.  Everything both tiers touch therefore
    lives here; [Vm] re-exports the exceptions and the frame type so its
    public interface is unchanged. *)

open Dpmr_ir
open Types
open Inst

exception Exit_program of int
exception Dpmr_detected of string
exception Timeout_exceeded
exception Vm_error of string
exception Cancelled of string

(* Cooperative cancellation: a per-domain hook polled once per basic
   block by every engine (at the same point the cost budget is checked).
   A supervisor installs a closure that raises {!Cancelled} when its
   wall-clock deadline passes; [None] — the common case — costs one
   domain-local load and a branch per block.  Deliberately domain-local
   rather than a VM field: the hook must reach VMs created arbitrarily
   deep inside a job (transform → run), which the wrapping supervisor
   never sees. *)
let poll_key : (unit -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_poll_hook f = Domain.DLS.set poll_key f
let poll_hook () = Domain.DLS.get poll_key

(* Lowered-engine register file: a flat byte buffer, 8 bytes per
   register, plus one tag byte per register ('\000' int, '\001' float).
   Keeping scalars out of [value] boxes is the difference between ~5
   words of allocation per executed ALU instruction and none: results
   flow between [Bytes] 64-bit primitives unboxed, and [I]/[F] boxes are
   built only at call, return and extern boundaries.  Register indices
   come from {!Lower} and are always < [lnregs], so the unchecked
   accessors are in range. *)

external reg_get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external reg_set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

type lframe = { bits : Bytes.t; tags : Bytes.t; lentry_sp : int64 }

(* same poison as the boxed register file had: an uninitialized register
   reads back as the int 0xDEADBEEF *)
let make_lframe nregs sp =
  let bits = Bytes.create (nregs lsl 3) in
  let tags = Bytes.make nregs '\000' in
  for r = 0 to nregs - 1 do
    reg_set bits (r lsl 3) 0xDEADBEEFL
  done;
  { bits; tags; lentry_sp = sp }

let[@inline] reg_int fr r =
  if Bytes.unsafe_get fr.tags r <> '\000' then
    raise (Vm_error "expected int/pointer value");
  reg_get fr.bits (r lsl 3)

let[@inline] reg_float fr r =
  if Bytes.unsafe_get fr.tags r = '\000' then
    raise (Vm_error "expected float value");
  Int64.float_of_bits (reg_get fr.bits (r lsl 3))

let[@inline] set_int fr r x =
  Bytes.unsafe_set fr.tags r '\000';
  reg_set fr.bits (r lsl 3) x

let[@inline] set_float fr r x =
  Bytes.unsafe_set fr.tags r '\001';
  reg_set fr.bits (r lsl 3) (Int64.bits_of_float x)

let[@inline] set_value fr r = function
  | Lower.I x -> set_int fr r x
  | Lower.F x -> set_float fr r x

(* Scalar operation semantics, shared verbatim by the reference engine,
   the lowered engine and the compiled tier (division by zero, shift
   masking, signedness handling must agree bit-for-bit). *)

let[@inline] exec_binop op w a b =
  let sa = Lower.sign_extend w a and sb = Lower.sign_extend w b in
  let r =
    match op with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Sdiv ->
        if Int64.equal sb 0L then raise (Vm_error "division by zero")
        else Int64.div sa sb
    | Srem ->
        if Int64.equal sb 0L then raise (Vm_error "division by zero")
        else Int64.rem sa sb
    | Udiv ->
        if Int64.equal b 0L then raise (Vm_error "division by zero")
        else Int64.unsigned_div a b
    | Urem ->
        if Int64.equal b 0L then raise (Vm_error "division by zero")
        else Int64.unsigned_rem a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl -> Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
    | Lshr -> Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))
    | Ashr -> Int64.shift_right sa (Int64.to_int (Int64.logand b 63L))
  in
  Lower.truncate_to w r

let[@inline] exec_icmp c w a b =
  let sa = Lower.sign_extend w a and sb = Lower.sign_extend w b in
  let r =
    match c with
    | Ieq -> Int64.equal a b
    | Ine -> not (Int64.equal a b)
    | Islt -> Int64.compare sa sb < 0
    | Isle -> Int64.compare sa sb <= 0
    | Isgt -> Int64.compare sa sb > 0
    | Isge -> Int64.compare sa sb >= 0
    | Iult -> Int64.unsigned_compare a b < 0
    | Iule -> Int64.unsigned_compare a b <= 0
    | Iugt -> Int64.unsigned_compare a b > 0
    | Iuge -> Int64.unsigned_compare a b >= 0
  in
  if r then 1L else 0L

let[@inline] exec_fcmp c a b =
  let r =
    match c with
    | Foeq -> a = b
    | Fone -> a <> b
    | Folt -> a < b
    | Fole -> a <= b
    | Fogt -> a > b
    | Foge -> a >= b
  in
  if r then 1L else 0L

let unknown_function name =
  raise (Vm_error (Printf.sprintf "call to unknown function %S" name))
