(** Base external functions: a mini-libc plus the VM intrinsics DPMR's
    generated code uses.

    Untransformed (golden / fi-stdapp) programs call these directly.
    DPMR-transformed programs call [<name>_efw] external function wrappers
    instead, registered by [Dpmr_core.Ext_wrappers]; those wrappers
    delegate the underlying behaviour to the implementations here. *)

open Dpmr_memsim

let as_int = Vm.as_int
let as_float = Vm.as_float

(** Read a NUL-terminated string at [addr] (bounded, to keep runaway reads
    from looping forever on garbage). *)
let read_cstring vm addr =
  let buf = Buffer.create 16 in
  let rec go a n =
    if n > 1_000_000 then raise (Vm.Vm_error "unterminated string");
    let c = Mem.read_u8 vm.Vm.mem a in
    if c = 0 then Buffer.contents buf
    else begin
      Buffer.add_char buf (Char.chr c);
      go (Int64.add a 1L) (n + 1)
    end
  in
  go addr 0

let cstring_len vm addr =
  let rec go a n =
    if n > 1_000_000 then raise (Vm.Vm_error "unterminated string")
    else if Mem.read_u8 vm.Vm.mem a = 0 then n
    else go (Int64.add a 1L) (n + 1)
  in
  go addr 0

let arg n args =
  match List.nth_opt args n with
  | Some v -> v
  | None -> raise (Vm.Vm_error (Printf.sprintf "extern: missing argument %d" n))

let iarg n args = as_int (arg n args)
let farg n args = as_float (arg n args)

(* ---------------- mini-libc implementations (shared with wrappers) --- *)

let impl_strlen vm s = cstring_len vm s

let impl_strcpy vm ~dst ~src =
  let len = cstring_len vm src in
  Vm.add_cost vm (len + 4);
  Mem.move vm.Vm.mem ~dst ~src (len + 1);
  len

let impl_strcmp vm a b =
  let rec go i =
    let ca = Mem.read_u8 vm.Vm.mem (Int64.add a (Int64.of_int i))
    and cb = Mem.read_u8 vm.Vm.mem (Int64.add b (Int64.of_int i)) in
    if ca <> cb then ((compare ca cb), i + 1)
    else if ca = 0 then (0, i + 1)
    else go (i + 1)
  in
  let r, read = go 0 in
  Vm.add_cost vm (read + 2);
  (r, read)

let impl_memcpy vm ~dst ~src n =
  Vm.add_cost vm ((n / 8) + 4);
  Mem.move vm.Vm.mem ~dst ~src n

let impl_memset vm dst byte n =
  Vm.add_cost vm ((n / 8) + 4);
  Mem.fill vm.Vm.mem dst n (byte land 0xFF)

(** atoi-style parse; returns (value, chars_consumed). *)
let impl_atoi vm s =
  let rec skip a n =
    let c = Mem.read_u8 vm.Vm.mem a in
    if c = Char.code ' ' then skip (Int64.add a 1L) (n + 1) else (a, n)
  in
  let a, skipped = skip s 0 in
  let neg = Mem.read_u8 vm.Vm.mem a = Char.code '-' in
  let a = if neg then Int64.add a 1L else a in
  let rec go a acc n =
    let c = Mem.read_u8 vm.Vm.mem a in
    if c >= Char.code '0' && c <= Char.code '9' then
      go (Int64.add a 1L) (Int64.add (Int64.mul acc 10L) (Int64.of_int (c - 48))) (n + 1)
    else (acc, n)
  in
  let v, digits = go a 0L 0 in
  Vm.add_cost vm (digits + 4);
  ((if neg then Int64.neg v else v), skipped + (if neg then 1 else 0) + digits)

(** calloc cost: allocation plus the zeroing pass. *)
let dpmr_vm_cost_calloc bytes = Cost.malloc_cost bytes + (bytes / 8)

(** realloc: allocate-copy-free semantics (the simplest conforming
    implementation; chunk reuse is the allocator's business). *)
let impl_realloc vm p n =
  let n = max 1 n in
  if Int64.equal p 0L then begin
    Vm.add_cost vm (Cost.malloc_cost n);
    Allocator.malloc vm.Vm.alloc n
  end
  else begin
    let old = Allocator.usable_size vm.Vm.alloc p in
    let q = Allocator.malloc vm.Vm.alloc n in
    let keep = min old n in
    Mem.move vm.Vm.mem ~dst:q ~src:p keep;
    Allocator.free vm.Vm.alloc p;
    Vm.add_cost vm (Cost.malloc_cost n + (keep / 8) + Cost.free_cost);
    q
  end

(* qsort over the simulated memory, calling back into the IR comparator.
   Implemented as an in-place insertion-free merge via an OCaml array of
   element blobs; the comparator sees addresses of scratch copies placed
   in fresh heap space, like a real qsort would pass element pointers. *)
let impl_qsort vm ~base ~nmemb ~size ~cmp_name =
  let elems =
    Array.init nmemb (fun i ->
        Mem.read_bytes vm.Vm.mem
          (Int64.add base (Int64.of_int (i * size)))
          size)
  in
  let scratch_a = Allocator.malloc vm.Vm.alloc size in
  let scratch_b = Allocator.malloc vm.Vm.alloc size in
  let compare_blobs a b =
    Mem.write_bytes vm.Vm.mem scratch_a a 0 size;
    Mem.write_bytes vm.Vm.mem scratch_b b 0 size;
    Vm.add_cost vm 8;
    match Vm.call_function vm cmp_name [ Vm.I scratch_a; Vm.I scratch_b ] with
    | Some (Vm.I r) -> Int64.to_int (Vm.sign_extend Dpmr_ir.Types.W32 r)
    | _ -> raise (Vm.Vm_error "qsort comparator did not return an int")
  in
  Array.sort compare_blobs elems;
  Array.iteri
    (fun i blob ->
      Mem.write_bytes vm.Vm.mem (Int64.add base (Int64.of_int (i * size))) blob 0 size)
    elems;
  Allocator.free vm.Vm.alloc scratch_a;
  Allocator.free vm.Vm.alloc scratch_b;
  Vm.add_cost vm (nmemb * (size / 8) * 4)

(** printf-style formatting over simulated memory.  Returns the rendered
    string and, for each [%s] conversion, the (argument index, string
    address, bytes read) — the DPMR wrapper needs those to perform its
    load checks (§3.1.5). *)
let impl_printf vm fmt_addr (vargs : Vm.value array) =
  let fmt = read_cstring vm fmt_addr in
  let buf = Buffer.create 32 in
  let reads = ref [] in
  let argi = ref 0 in
  let pop () =
    let i = !argi in
    incr argi;
    if i >= Array.length vargs then raise (Vm.Vm_error "printf: too few arguments")
    else (i, vargs.(i))
  in
  let n = String.length fmt in
  let rec go i =
    if i < n then
      if fmt.[i] = '%' && i + 1 < n then begin
        (match fmt.[i + 1] with
        | '%' -> Buffer.add_char buf '%'
        | 'd' | 'i' | 'l' | 'u' ->
            let _, v = pop () in
            Buffer.add_string buf (Int64.to_string (as_int v))
        | 'f' | 'g' | 'e' ->
            let _, v = pop () in
            Buffer.add_string buf (Printf.sprintf "%.6g" (as_float v))
        | 'c' ->
            let _, v = pop () in
            Buffer.add_char buf (Char.chr (Int64.to_int (as_int v) land 0xFF))
        | 'p' ->
            let _, v = pop () in
            Buffer.add_string buf (Printf.sprintf "0x%Lx" (as_int v))
        | 's' ->
            let idx, v = pop () in
            let addr = as_int v in
            let s = read_cstring vm addr in
            reads := (idx, addr, String.length s + 1) :: !reads;
            Buffer.add_string buf s
        | c -> raise (Vm.Vm_error (Printf.sprintf "printf: unsupported %%%c" c)));
        go (i + 2)
      end
      else begin
        Buffer.add_char buf fmt.[i];
        go (i + 1)
      end
  in
  go 0;
  Vm.add_cost vm (Buffer.length buf + 4);
  (Buffer.contents buf, List.rev !reads)

(* ---------------- registration ---------------- *)

let out vm s = Buffer.add_string vm.Vm.out s

(** Register the base mini-libc and intrinsics into [vm]. *)
let register_base vm =
  let reg = Vm.register_extern vm in
  (* output *)
  reg "print_int" (fun vm args ->
      out vm (Int64.to_string (iarg 0 args));
      None);
  reg "print_float" (fun vm args ->
      out vm (Printf.sprintf "%.6g" (farg 0 args));
      None);
  reg "print_str" (fun vm args ->
      out vm (read_cstring vm (iarg 0 args));
      None);
  reg "putchar" (fun vm args ->
      out vm (String.make 1 (Char.chr (Int64.to_int (iarg 0 args) land 0xFF)));
      None);
  reg "print_newline" (fun vm _ ->
      out vm "\n";
      None);
  (* process control *)
  reg "exit" (fun _ args -> raise (Vm.Exit_program (Int64.to_int (iarg 0 args))));
  reg "abort" (fun _ _ -> raise (Vm.Exit_program 134));
  (* strings and memory *)
  reg "strlen" (fun vm args -> Some (Vm.I (Int64.of_int (impl_strlen vm (iarg 0 args)))));
  reg "strcpy" (fun vm args ->
      let dst = iarg 0 args and src = iarg 1 args in
      ignore (impl_strcpy vm ~dst ~src);
      Some (Vm.I dst));
  reg "strcmp" (fun vm args ->
      let r, _ = impl_strcmp vm (iarg 0 args) (iarg 1 args) in
      Some (Vm.I (Int64.of_int r)));
  reg "memcpy" (fun vm args ->
      let dst = iarg 0 args and src = iarg 1 args in
      impl_memcpy vm ~dst ~src (Int64.to_int (iarg 2 args));
      Some (Vm.I dst));
  reg "memmove" (fun vm args ->
      let dst = iarg 0 args and src = iarg 1 args in
      impl_memcpy vm ~dst ~src (Int64.to_int (iarg 2 args));
      Some (Vm.I dst));
  reg "memset" (fun vm args ->
      let dst = iarg 0 args in
      impl_memset vm dst (Int64.to_int (iarg 1 args)) (Int64.to_int (iarg 2 args));
      Some (Vm.I dst));
  reg "atoi" (fun vm args ->
      let v, _ = impl_atoi vm (iarg 0 args) in
      Some (Vm.I (Int64.logand v 0xFFFFFFFFL)));
  reg "calloc" (fun vm args ->
      let n = Int64.to_int (iarg 0 args) and size = Int64.to_int (iarg 1 args) in
      let bytes = max 1 (n * size) in
      Vm.add_cost vm (dpmr_vm_cost_calloc bytes);
      let p = Allocator.malloc vm.Vm.alloc bytes in
      Mem.fill vm.Vm.mem p bytes 0;
      Some (Vm.I p));
  reg "realloc" (fun vm args ->
      let p = iarg 0 args and n = Int64.to_int (iarg 1 args) in
      Some (Vm.I (impl_realloc vm p n)));
  reg "qsort" (fun vm args ->
      let base = iarg 0 args
      and nmemb = Int64.to_int (iarg 1 args)
      and size = Int64.to_int (iarg 2 args)
      and cmp = iarg 3 args in
      let cmp_name =
        match Hashtbl.find_opt vm.Vm.addr_fun cmp with
        | Some n -> n
        | None -> raise (Mem.Fault (Mem.Unmapped cmp))
      in
      impl_qsort vm ~base ~nmemb ~size ~cmp_name;
      None);
  reg "printf" (fun vm args ->
      match args with
      | fmt :: rest ->
          let s, _ = impl_printf vm (as_int fmt) (Array.of_list rest) in
          out vm s;
          Some (Vm.I (Int64.of_int (String.length s)))
      | [] -> raise (Vm.Vm_error "printf: missing format"));
  (* intrinsics used by DPMR-generated code *)
  reg "__dpmr_detect" (fun vm args ->
      let what = Printf.sprintf "check %Ld" (iarg 0 args) in
      (match vm.Vm.trace with
      | Some s ->
          Dpmr_trace.Trace.emit_detect s ~cost:!(vm.Vm.cost) ~what ~addr:(-1L)
            ~off:(-1)
      | None -> ());
      raise (Vm.Dpmr_detected what));
  reg "__dpmr_heap_size" (fun vm args ->
      Some (Vm.I (Int64.of_int (Allocator.usable_size vm.Vm.alloc (iarg 0 args)))));
  reg "__dpmr_zero" (fun vm args ->
      (* zero-before-free support: cost matches the byte-store loop of
         Table 2.8 that this call lowers *)
      let p = iarg 0 args and n = Int64.to_int (iarg 1 args) in
      Vm.add_cost vm (max 1 n);
      Mem.fill vm.Vm.mem p n 0;
      None);
  reg "__dpmr_rand_range" (fun vm args ->
      let lo = Int64.to_int (iarg 0 args) and hi = Int64.to_int (iarg 1 args) in
      Some (Vm.I (Int64.of_int (Rng.range vm.Vm.rng lo hi))));
  (* fault-injection marker: records the cost at first execution *)
  reg "__fi_mark" (fun vm _ ->
      (match vm.Vm.fi_first_cost with
      | None -> vm.Vm.fi_first_cost <- Some !(vm.Vm.cost)
      | Some _ -> ());
      (match vm.Vm.trace with
      | Some s -> Dpmr_trace.Trace.emit_fi_mark s ~cost:!(vm.Vm.cost)
      | None -> ());
      None)

(** Declare the extern signatures in a program so the verifier and the
    transforms know them.  [tenv]-independent. *)
let declare_signatures (p : Dpmr_ir.Prog.t) =
  let open Dpmr_ir.Types in
  let d name ret params = Dpmr_ir.Prog.declare_extern p name { ret; params; vararg = false } in
  d "print_int" Void [ i64 ];
  d "print_float" Void [ Float ];
  d "print_str" Void [ Ptr (arr i8 0) ];
  d "putchar" Void [ i32 ];
  d "print_newline" Void [];
  d "exit" Void [ i32 ];
  d "abort" Void [];
  d "strlen" i64 [ Ptr (arr i8 0) ];
  d "strcpy" (Ptr (arr i8 0)) [ Ptr (arr i8 0); Ptr (arr i8 0) ];
  d "strcmp" i32 [ Ptr (arr i8 0); Ptr (arr i8 0) ];
  d "memcpy" (Ptr (arr i8 0)) [ Ptr (arr i8 0); Ptr (arr i8 0); i64 ];
  d "memmove" (Ptr (arr i8 0)) [ Ptr (arr i8 0); Ptr (arr i8 0); i64 ];
  d "memset" (Ptr (arr i8 0)) [ Ptr (arr i8 0); i32; i64 ];
  d "atoi" i32 [ Ptr (arr i8 0) ];
  Dpmr_ir.Prog.declare_extern p "printf"
    { ret = i32; params = [ Ptr (arr i8 0) ]; vararg = true };
  d "calloc" (Ptr (arr i8 0)) [ i64; i64 ];
  d "realloc" (Ptr (arr i8 0)) [ Ptr (arr i8 0); i64 ];
  d "qsort" Void
    [ Ptr (arr i8 0); i64; i64; Ptr (fun_ty i32 [ Ptr (arr i8 0); Ptr (arr i8 0) ]) ];
  d "__dpmr_detect" Void [ i64 ];
  d "__dpmr_heap_size" i64 [ Ptr (arr i8 0) ];
  d "__dpmr_zero" Void [ Ptr i8; i64 ];
  d "__dpmr_rand_range" i64 [ i64; i64 ];
  d "__fi_mark" Void []
