(** Classification of a program run, matching the experiment descriptors
    and random variables of Table 3.2. *)

type t =
  | Normal  (** exit code 0 *)
  | App_exit of int
      (** nonzero exit: application-dependent error output — counts as
          natural detection when the output is incorrect *)
  | Crash of string  (** trap (segfault, invalid/double free, …): natural detection *)
  | Dpmr_detect of string  (** a DPMR load check or wrapper check fired *)
  | Timeout  (** instruction budget exceeded (≈ 20x golden run, §3.6) *)

type run = {
  outcome : t;
  cost : int64;  (** total cost units consumed *)
  output : string;  (** captured program output *)
  peak_heap_bytes : int;
  mapped_pages : int;
  fi_first_cost : int64 option;
      (** cost at the first execution of fault-injection code ([SF] in
          Table 3.2 is [fi_first_cost <> None]) *)
}

let is_dpmr_detect r = match r.outcome with Dpmr_detect _ -> true | _ -> false
let is_crash r = match r.outcome with Crash _ -> true | _ -> false

let to_string = function
  | Normal -> "normal"
  | App_exit n -> Printf.sprintf "app-exit(%d)" n
  | Crash s -> Printf.sprintf "crash(%s)" s
  | Dpmr_detect s -> Printf.sprintf "dpmr-detect(%s)" s
  | Timeout -> "timeout"
